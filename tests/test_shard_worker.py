"""Persistent shard workers: delta-only IPC (`repro.shard.worker`).

The tentpole invariant under test: with ``executor="process"`` and the
default ``ipc="delta"``, the coordinator holds no engine replicas —
workers keep all view state resident and the pipe carries only
coalesced sub-batches out and stats deltas / read results back.  Every
read path must stay bit-identical to the serial executor and to the
``ipc="pickle-engine"`` oracle (the old ship-the-engine path).
"""

import random

import pytest

from repro.data import Database, Update
from repro.naive import evaluate, evaluate_scalar
from repro.query import parse_query
from repro.rings.standard import FloatRing, Z
from repro.serve import update_stream
from repro.shard import (
    ShardWorkerError,
    ShardedEngine,
    decode_batch,
    encode_batch,
)
from tests.conftest import valid_stream

QUERY = parse_query("Q(B, A) = R(B, A) * S(B)")


def fresh_db(rng=None, rows=0, domain=8, ring=Z):
    db = Database(ring=ring)
    db.create("R", ("B", "A"))
    db.create("S", ("B",))
    if rng is not None:
        for _ in range(rows):
            db["R"].insert(rng.randrange(domain), rng.randrange(domain))
            db["S"].insert(rng.randrange(domain))
    return db


# ----------------------------------------------------------------------
# Columnar wire encoding
# ----------------------------------------------------------------------


class TestWireEncoding:
    def test_round_trip_integer_ring(self):
        batch = [
            Update("R", (1, 2), 3),
            Update("R", (1, 2), -1),  # coalesces with the first
            Update("S", (4,), 5),
            Update("R", (0, 0), 1),
        ]
        encoded = encode_batch(batch, Z)
        decoded = decode_batch(encoded, Z)
        got = {(u.relation, u.key): u.payload for u in decoded}
        assert got == {
            ("R", (1, 2)): 2,
            ("R", (0, 0)): 1,
            ("S", (4,)): 5,
        }

    def test_float_payloads_round_trip_bit_identically(self):
        ring = FloatRing()
        # Payloads chosen so any decimal re-parse would drift.
        payloads = [0.1, 1e-9, 3.141592653589793, -2.5000000000000004]
        batch = [
            Update("R", (i, 0), payload)
            for i, payload in enumerate(payloads)
        ]
        decoded = decode_batch(encode_batch(batch, ring), ring)
        got = {u.key[0]: u.payload for u in decoded}
        for i, payload in enumerate(payloads):
            assert got[i] == payload  # exact, not approx

    def test_cancelled_updates_never_hit_the_wire(self):
        batch = [Update("R", (7, 7), 1), Update("R", (7, 7), -1)]
        assert encode_batch(batch, Z) == {}


# ----------------------------------------------------------------------
# Differential: delta protocol vs serial executor vs pickle-engine oracle
# ----------------------------------------------------------------------


class TestDeltaDifferential:
    def test_delta_matches_serial_and_pickle_engine(self):
        """Same stream through three coordinators — serial in-process,
        process+delta workers, process+pickle-engine (the old path, kept
        as the differential oracle) — must agree bit-for-bit on every
        read path."""
        stream = valid_stream(random.Random(5), {"R": 2, "S": 1}, 160)
        engines = {
            "serial": ShardedEngine(
                QUERY, fresh_db(random.Random(13), rows=20), shards=3,
                executor="serial",
            ),
            "delta": ShardedEngine(
                QUERY, fresh_db(random.Random(13), rows=20), shards=3,
                executor="process", ipc="delta",
            ),
            "oracle": ShardedEngine(
                QUERY, fresh_db(random.Random(13), rows=20), shards=3,
                executor="process", ipc="pickle-engine",
            ),
        }
        assert engines["delta"].engines == []  # no coordinator replicas
        assert engines["oracle"].engines  # the old path still has them
        try:
            for engine in engines.values():
                engine.apply_batch(stream[:100])
                engine.apply(Update("R", (1, 1), 2))  # inline single update
                engine.apply_batch(stream[100:])
            expected = dict(engines["serial"].enumerate())
            for name in ("delta", "oracle"):
                assert dict(engines[name].enumerate()) == expected
                assert (
                    engines[name].output_relation()
                    == engines["serial"].output_relation()
                )
            for key in list(expected)[:5] + [(99, 99)]:
                payloads = {
                    name: engine.lookup(key)
                    for name, engine in engines.items()
                }
                assert len(set(payloads.values())) == 1, payloads
            assert (
                engines["delta"].total_view_size()
                == engines["serial"].total_view_size()
            )
        finally:
            for engine in engines.values():
                engine.close()

    def test_boolean_scalar_via_workers(self):
        query = parse_query("Q() = R(B, A) * S(B)")
        db = fresh_db(random.Random(2), rows=25)
        with ShardedEngine(
            query, db, shards=2, executor="process", ipc="delta"
        ) as engine:
            assert engine.scalar() == evaluate_scalar(query, db)
            engine.apply(Update("S", (0,), 2))
            assert engine.scalar() == evaluate_scalar(query, db)
            assert dict(engine.enumerate()).get((), 0) == engine.scalar()

    def test_broadcast_apply_goes_through_workers(self):
        """Satellite: broadcast updates (relation without the shard
        variable) must ride the worker protocol — the old process path
        ran them serially against coordinator replicas that no longer
        exist in delta mode."""
        query = parse_query("Q(B, C) = R(B, A) * S(B) * T(C)")
        db = fresh_db(random.Random(4), rows=15)
        db.create("T", ("C",))
        for value in range(4):
            db["T"].insert(value)
        with ShardedEngine(
            query, db, shards=3, shard_variable="B",
            executor="process", ipc="delta",
        ) as engine:
            assert engine.output_relation() == evaluate(query, db)
            engine.apply(Update("T", (9,), 2))  # broadcast single update
            assert engine.output_relation() == evaluate(query, db)
            engine.apply_batch(
                [Update("T", (5,), 1), Update("R", (2, 2), 1)]
            )
            assert engine.output_relation() == evaluate(query, db)

    def test_merged_views_and_describe(self):
        db = fresh_db(random.Random(17), rows=40)
        serial = ShardedEngine(
            QUERY, db.copy(), shards=3, executor="serial"
        )
        with ShardedEngine(
            QUERY, db, shards=3, executor="process", ipc="delta"
        ) as engine:
            engine.apply_batch(
                valid_stream(random.Random(8), {"R": 2, "S": 1}, 60)
            )
            serial.apply_batch(
                valid_stream(random.Random(8), {"R": 2, "S": 1}, 60)
            )
            assert engine.merged_views() == serial.merged_views()
            text = engine.describe()
            assert "process/delta" in text
            assert "worker-resident" in text
        serial.close()


# ----------------------------------------------------------------------
# ipc observability: bytes per commit scale with the batch, not state
# ----------------------------------------------------------------------


class TestIpcObservability:
    def test_bytes_per_commit_flat_as_state_grows(self):
        """Ship 8 same-size batches of fresh keys; resident view state
        grows ~8x while the bytes crossing the pipe per commit stay
        flat.  Under pickle-engine semantics the last commit would ship
        ~8x the first one."""
        db = fresh_db()
        commits = 8
        with ShardedEngine(
            QUERY, db, shards=2, executor="process", ipc="delta"
        ) as engine:
            stats = engine.attach_stats()
            for round_no in range(commits):
                base = round_no * 1000  # disjoint keys: state only grows
                batch = [
                    Update("R", (base + i, i), 1) for i in range(100)
                ] + [Update("S", (base + i,), 1) for i in range(100)]
                engine.apply_batch(batch)
            assert engine.total_view_size() > 0
            assert stats.ipc_commits == commits
            assert stats.ipc_commit_bytes.count == commits
            low = stats.ipc_commit_bytes.stat.minimum
            high = stats.ipc_commit_bytes.stat.maximum
            assert low > 0
            # Identical batch shapes: per-commit wire size is flat (the
            # small wiggle is pickle framing), not proportional to the
            # 8x-grown view state.
            assert high <= 1.5 * low, (low, high)
            assert stats.ipc_workers_spawned == 2
            assert stats.ipc_rounds >= commits
            assert stats.ipc_bytes_sent > 0
            assert stats.ipc_bytes_received > 0

    def test_obs_schema_and_render(self):
        db = fresh_db()
        with ShardedEngine(
            QUERY, db, shards=2, executor="process", ipc="delta"
        ) as engine:
            stats = engine.attach_stats()
            engine.apply_batch(
                valid_stream(random.Random(3), {"R": 2, "S": 1}, 80)
            )
            list(engine.enumerate())
            merged = engine.merged_stats()
        payload = stats.to_dict()["ipc"]
        assert payload["commits"] == 1
        assert payload["rounds"] >= 1
        assert payload["bytes_sent"] > 0
        assert payload["bytes_received"] > 0
        assert payload["workers"] == 2
        assert payload["workers_spawned"] == 2
        assert payload["worker_failures"] == 0
        assert 0.0 <= payload["utilization"] <= 1.0
        assert payload["commit_bytes"]["count"] == 1
        assert "worker ipc:" in stats.render()
        # Worker-side maintenance stats delta made it back to the
        # per-shard recorders the merged view labels.
        assert set(merged.shard_summaries) == {"shard0", "shard1"}
        assert all(
            summary["batches"] >= 1
            for summary in merged.shard_summaries.values()
        )


# ----------------------------------------------------------------------
# Worker crashes (satellite): clear error, counted, pool rebuilds
# ----------------------------------------------------------------------


class TestWorkerCrash:
    def test_crash_surfaces_counts_and_pool_rebuilds(self):
        db = fresh_db()
        serial = ShardedEngine(
            QUERY, fresh_db(), shards=3, executor="serial"
        )
        batches = [
            valid_stream(random.Random(seed), {"R": 2, "S": 1}, 60)
            for seed in (1, 2, 3)
        ]
        with ShardedEngine(
            QUERY, db, shards=3, executor="process", ipc="delta"
        ) as engine:
            stats = engine.attach_stats()
            engine.apply_batch(batches[0])
            first_pool = engine._worker_pool
            assert first_pool is not None and not first_pool.broken

            # Kill one worker out from under the pool, mid-life.
            first_pool.workers[1].process.kill()
            first_pool.workers[1].process.join(5.0)
            with pytest.raises(ShardWorkerError, match="shard worker 1"):
                engine.apply_batch(batches[1])
            assert first_pool.broken
            assert stats.ipc_worker_failures == 1
            assert stats.to_dict()["ipc"]["worker_failures"] == 1

            # The failed batch's base writes committed before the crash,
            # so the rebuilt workers (respawned from the authoritative
            # base database) include it — nothing is lost or doubled.
            engine.apply_batch(batches[2])
            assert engine._worker_pool is not first_pool
            assert not engine._worker_pool.broken
            assert stats.ipc_workers_spawned == 6  # 3 at birth + 3 rebuilt

            for batch in batches:
                serial.apply_batch(batch)
            assert dict(engine.enumerate()) == dict(serial.enumerate())
            assert engine.output_relation() == evaluate(QUERY, db)
        serial.close()

    def test_remote_error_does_not_break_the_pool(self):
        """An application-level error inside a worker (bad command)
        raises in the parent but leaves the pool healthy — only
        transport failures force a rebuild."""
        db = fresh_db()
        with ShardedEngine(
            QUERY, db, shards=2, executor="process", ipc="delta"
        ) as engine:
            stats = engine.attach_stats()
            engine.apply(Update("R", (1, 2), 3))
            pool = engine._worker_pool
            with pytest.raises(ShardWorkerError, match="unknown worker"):
                pool.call(0, ("no_such_command",))
            assert not pool.broken
            assert stats.ipc_worker_failures == 0
            engine.apply(Update("S", (1,), 5))  # same pool still serves
            assert engine._worker_pool is pool
            assert engine.lookup((1, 2)) == 15


# ----------------------------------------------------------------------
# Lifecycle (satellite): teardown, pickling, configuration
# ----------------------------------------------------------------------


class TestWorkerLifecycle:
    def test_close_terminates_workers_and_keeps_stats(self):
        db = fresh_db()
        engine = ShardedEngine(
            QUERY, db, shards=2, executor="process", ipc="delta"
        )
        engine.attach_stats()
        engine.apply_batch(valid_stream(random.Random(9), {"R": 2, "S": 1}, 40))
        processes = [w.process for w in engine._worker_pool.workers]
        assert all(p.is_alive() for p in processes)
        engine.close()
        assert engine._worker_pool is None
        for process in processes:
            process.join(5.0)
            assert not process.is_alive()
        # The shutdown replies shipped each worker's final stats delta.
        merged = engine.merged_stats()
        assert set(merged.shard_summaries) == {"shard0", "shard1"}
        engine.close()  # idempotent

    def test_context_manager_tears_down(self):
        db = fresh_db()
        with ShardedEngine(
            QUERY, db, shards=2, executor="process", ipc="delta"
        ) as engine:
            engine.apply(Update("R", (0, 0), 1))
            processes = [w.process for w in engine._worker_pool.workers]
        for process in processes:
            process.join(5.0)
            assert not process.is_alive()

    def test_coordinator_pickles_without_pool(self):
        import pickle

        db = fresh_db(random.Random(1), rows=10)
        with ShardedEngine(
            QUERY, db, shards=2, executor="process", ipc="delta"
        ) as engine:
            engine.apply(Update("R", (3, 3), 2))
            blob = pickle.dumps(engine)
            expected = dict(engine.enumerate())
        clone = pickle.loads(blob)
        try:
            assert clone._worker_pool is None  # respawns lazily
            assert dict(clone.enumerate()) == expected
        finally:
            clone.close()

    def test_single_shard_stays_in_process(self):
        db = fresh_db()
        with ShardedEngine(
            QUERY, db, shards=1, executor="process", ipc="delta"
        ) as engine:
            assert not engine._delta_ipc
            assert len(engine.engines) == 1
            engine.apply(Update("R", (1, 1), 1))
            assert engine._worker_pool is None

    def test_invalid_ipc_mode_rejected(self):
        with pytest.raises(ValueError, match="ipc"):
            ShardedEngine(QUERY, fresh_db(), shards=2, ipc="carrier-pigeon")
