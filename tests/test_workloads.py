"""Workload generators: shape and invariant checks."""

import pytest

from repro.constraints import sigma_reduct
from repro.naive import evaluate
from repro.query import is_hierarchical, is_q_hierarchical
from repro.workloads import (
    classify_tpch,
    fd_impact,
    job_star_counter,
    random_edges,
    random_workload,
    retailer_database,
    retailer_fd_database,
    retailer_fd_query,
    retailer_query,
    retailer_update_stream,
    sliding_window_stream,
    tpch_queries,
    triangle_insert_stream,
    valid_insert_batch,
    zipf_edges,
)


class TestRetailer:
    def test_query_is_q_hierarchical(self):
        assert is_q_hierarchical(retailer_query())

    def test_database_matches_query_schema(self):
        db = retailer_database(locations=5, dates=5, items=10, inventory_rows=50)
        q = retailer_query()
        out = evaluate(q, db)  # must not raise; schema names line up
        assert len(out) > 0

    def test_update_stream_targets_query_relations(self):
        q = retailer_query()
        names = set(q.relation_names())
        stream = retailer_update_stream(200, seed=4)
        assert {u.relation for u in stream} <= names
        assert all(u.payload == 1 for u in stream)

    def test_update_stream_deletes_previous_inserts(self):
        stream = retailer_update_stream(300, seed=5, delete_fraction=0.3)
        deletes = [u for u in stream if u.payload < 0]
        assert deletes
        inserted = {(u.relation, u.key) for u in stream if u.payload > 0}
        for delete in deletes:
            assert (delete.relation, delete.key) in inserted

    def test_fd_query_properties(self):
        q, fds = retailer_fd_query()
        assert not is_hierarchical(q)
        assert is_hierarchical(sigma_reduct(q, fds))

    def test_fd_database_satisfies_fd(self):
        db = retailer_fd_database(seed=7)
        zip_to_locn = {}
        for locn, z in db["Location"].keys():
            assert zip_to_locn.setdefault(z, locn) == locn

    def test_determinism(self):
        a = retailer_update_stream(50, seed=9)
        b = retailer_update_stream(50, seed=9)
        assert a == b


class TestTPCH:
    def test_twenty_two_queries(self):
        queries = tpch_queries()
        assert len(queries) == 22
        assert [q.name for q in queries] == [f"Q{i}" for i in range(1, 23)]

    def test_self_join_free(self):
        for item in tpch_queries():
            assert item.query.is_self_join_free(), item.name

    def test_classification_shape(self):
        """Paper: a majority of skeletons hierarchical, +4/+4 under FDs."""
        study = classify_tpch()
        rows = study.summary_rows()
        assert rows[0][0] == "Boolean" and rows[1][0] == "non-Boolean"
        # FDs strictly help, by exactly 4 on these skeletons.
        assert len(study.fd_gain_boolean) == 4
        assert len(study.fd_gain_non_boolean) == 4
        assert rows[0][1] >= 8
        assert rows[1][1] >= 8

    def test_q3_needs_fds(self):
        q3 = next(q for q in tpch_queries() if q.name == "Q3")
        assert not is_hierarchical(q3.query)
        assert is_hierarchical(sigma_reduct(q3.query, q3.fds))


class TestJOB:
    def test_valid_batch_ends_consistent(self):
        counter = job_star_counter()
        counter.apply_batch(valid_insert_batch(8, 6, 50, seed=1))
        assert counter.is_consistent()
        assert counter.count == 50  # every fact joins exactly once

    def test_out_of_order_equals_in_order(self):
        in_order = valid_insert_batch(8, 6, 50, seed=2, out_of_order=False)
        shuffled = valid_insert_batch(8, 6, 50, seed=2, out_of_order=True)
        assert sorted(map(repr, in_order)) == sorted(map(repr, shuffled))

        a = job_star_counter()
        a.apply_batch(in_order)
        b = job_star_counter()
        b.apply_batch(shuffled)
        assert a.count == b.count


class TestGraphs:
    def test_random_edges_distinct(self):
        edges = random_edges(20, 100, seed=3)
        assert len(edges) == len(set(edges)) == 100
        assert all(a != b for a, b in edges)

    def test_zipf_skew(self):
        edges = zipf_edges(200, 400, skew=1.3, seed=3)
        degree = {}
        for a, _b in edges:
            degree[a] = degree.get(a, 0) + 1
        top = max(degree.values())
        average = len(edges) / len(degree)
        assert top > 4 * average  # hubs exist

    def test_triangle_insert_stream_feeds_three_relations(self):
        stream = list(triangle_insert_stream([(1, 2), (3, 4)]))
        assert len(stream) == 6
        assert {u.relation for u in stream} == {"R", "S", "T"}

    def test_sliding_window_deletes_oldest(self):
        edges = [(i, i + 1) for i in range(5)]
        stream = list(sliding_window_stream(edges, window=2))
        deletes = [u for u in stream if u.payload < 0]
        assert deletes
        assert deletes[0].key == (0, 1)

    def test_window_net_content(self):
        edges = [(i, i + 1) for i in range(6)]
        net = {}
        for update in sliding_window_stream(edges, window=3):
            if update.relation != "R":
                continue
            net[update.key] = net.get(update.key, 0) + update.payload
        live = {k for k, v in net.items() if v > 0}
        assert live == {(3, 4), (4, 5), (5, 6)}


class TestSyntheticWorkload:
    def test_reproducible(self):
        assert [w.query.name for w in random_workload(10, seed=1)] == [
            w.query.name for w in random_workload(10, seed=1)
        ]

    def test_fd_impact_shape(self):
        """The RelationalAI observation: a large share of the initially
        non-q-hierarchical queries flips under FDs (76% in the paper's
        project; we assert a majority on the synthetic workload)."""
        impact = fd_impact(random_workload(400, seed=11))
        assert impact.total == 400
        assert impact.q_hierarchical_with_fds > impact.q_hierarchical_plain
        assert impact.flipped_fraction > 0.5

    def test_fds_match_chain_hops(self):
        for item in random_workload(50, seed=3):
            depth = len(item.query.atoms) - 1  # Fact + Dim1..Dim_depth
            for fd in item.fds:
                # Each FD k_{i-1} -> k_i corresponds to a real hop.
                i = int(fd.dependent[1:])
                assert 1 <= i <= depth
                assert fd.determinant == (f"k{i-1}",)
            # At most one hop (the many-to-many bridge) lacks an FD.
            assert len(item.fds) >= depth - 1

    def test_non_flipping_residue_exists(self):
        impact = fd_impact(random_workload(400, seed=11))
        assert impact.q_hierarchical_with_fds < impact.total
