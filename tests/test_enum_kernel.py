"""Compiled enumeration kernels (repro.viewtree.enumplan).

The compiled read path must be *semantically invisible*: for any valid
update stream, any ring, and any supported query shape, the compiled
engine's enumerations — full drains and prebound access requests alike —
are bit-identical (contents AND order) to the generic recursive walk's,
which in turn is differential-tested against naive recomputation.  Plus:
compiled plans must survive pickling (the process-pool shard executor
ships engines whole), two in-flight iterators on one engine must not
interfere, and the read-path obs counters must record what actually ran.
"""

from __future__ import annotations

import json
import pickle
import random

import pytest

from repro.core.engine import IVMEngine
from repro.core.planner import plan_maintenance
from repro.cqap.engine import CQAPEngine
from repro.data import Database, Update
from repro.naive import evaluate
from repro.obs import MaintenanceStats
from repro.query import parse_query, search_order
from repro.rings import B, MIN_PLUS, PROVENANCE, R, Z
from repro.shard import ShardedEngine
from repro.viewtree import EnumPlan, ViewTreeEngine, make_strategy
from repro.viewtree.strategies import STRATEGIES

from tests.conftest import valid_stream


def seeded_db(schemas, rng, rows=60, domain=8, ring=Z):
    db = Database(ring=ring)
    for name, schema in schemas:
        relation = db.create(name, schema)
        for _ in range(rows):
            key = tuple(rng.randrange(domain) for _ in schema)
            relation.add(key, ring.one)
    return db


def twin_engines(query, schemas, seed, order=None, ring=Z, rows=60):
    """A compiled and a generic engine over identically-seeded databases."""
    compiled = ViewTreeEngine(
        query, seeded_db(schemas, random.Random(seed), rows=rows, ring=ring),
        order,
    )
    generic = ViewTreeEngine(
        query, seeded_db(schemas, random.Random(seed), rows=rows, ring=ring),
        order, compile_enum=False,
    )
    assert compiled.enum_compiled and not generic.enum_compiled
    assert isinstance(compiled._enum_plan, EnumPlan)
    assert generic._enum_plan is None
    return compiled, generic


QUERIES = [
    # q-hierarchical (Fig. 3): the Theorem 4.1 constant-delay case.
    ("Q(Y, X, Z) = R(Y, X) * S(Y, Z)",
     [("R", ("Y", "X")), ("S", ("Y", "Z"))], False),
    # hierarchical but not q-hierarchical: searched free-top order,
    # bound-view probe on the inner step.
    ("Q(A, C) = R(A, B) * S(B, C)",
     [("R", ("A", "B")), ("S", ("B", "C"))], True),
    # three-atom chain with a single free variable (deep bound suffix).
    ("Q(A) = R(A, B) * S(B, C) * T(C, D)",
     [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "D"))], True),
    # self-join-shaped sibling leaves at one node.
    ("Q(A) = R(A, B) * S(A, B) * T(A)",
     [("R", ("A", "B")), ("S", ("A", "B")), ("T", ("A",))], False),
    # single-atom identity query (no guard beyond the leaf itself).
    ("Q(A, B) = R(A, B)", [("R", ("A", "B"))], False),
]


class TestCompiledGenericEquivalence:
    @pytest.mark.parametrize("text,schemas,searched", QUERIES)
    def test_full_enumeration_identical(self, text, schemas, searched):
        query = parse_query(text)
        order = search_order(query, require_free_top=True) if searched else None
        compiled, generic = twin_engines(query, schemas, seed=17, order=order)
        arities = {name: len(schema) for name, schema in schemas}
        for step, update in enumerate(
            valid_stream(random.Random(23), arities, 400)
        ):
            compiled.apply(update)
            generic.apply(update)
            if step % 80 == 79:
                # contents AND order, mid-stream
                assert list(compiled.enumerate()) == list(generic.enumerate())
        assert list(compiled.enumerate()) == list(generic.enumerate())
        assert compiled.output_relation() == evaluate(
            query, compiled.database
        )

    @pytest.mark.parametrize("text,schemas,searched", QUERIES)
    def test_prebound_lookups_identical(self, text, schemas, searched):
        query = parse_query(text)
        order = search_order(query, require_free_top=True) if searched else None
        compiled, generic = twin_engines(query, schemas, seed=31, order=order)
        arities = {name: len(schema) for name, schema in schemas}
        for update in valid_stream(random.Random(5), arities, 300):
            compiled.apply(update)
            generic.apply(update)
        head = query.head
        for value in range(-1, 10):  # -1: guaranteed miss
            one = {head[0]: value}
            assert list(compiled.enumerate(prebound=one)) == list(
                generic.enumerate(prebound=one)
            )
            everything = {v: (value + i) % 10 for i, v in enumerate(head)}
            assert list(compiled.enumerate(prebound=everything)) == list(
                generic.enumerate(prebound=everything)
            )

    @pytest.mark.parametrize(
        "ring,deletes",
        [(Z, True), (R, True), (B, False), (MIN_PLUS, False),
         (PROVENANCE, False)],
        ids=["int", "float", "boolean", "min-plus", "provenance"],
    )
    def test_rings_including_non_exact_zero(self, ring, deletes):
        # R (tolerance), PROVENANCE (structural), and the analytics rings
        # have exact_zero=False: the kernel must take the is_zero() path
        # and still match the generic walk bit for bit (for floats that
        # includes the exact multiplication order).
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        compiled, generic = twin_engines(query, schemas, seed=11, ring=ring)
        arities = {name: len(schema) for name, schema in schemas}
        stream = valid_stream(
            random.Random(7), arities, 300,
            delete_prob=0.25 if deletes else 0.0,
        )
        for update in stream:
            payload = ring.one if update.payload > 0 else ring.neg(ring.one)
            compiled.apply(Update(update.relation, update.key, payload))
            generic.apply(Update(update.relation, update.key, payload))
        assert list(compiled.enumerate()) == list(generic.enumerate())
        for y in range(8):
            assert list(compiled.enumerate(prebound={"Y": y})) == list(
                generic.enumerate(prebound={"Y": y})
            )

    def test_empty_head_scalar_query_stays_generic(self):
        query = parse_query("Q() = R(A, B) * S(B)")
        schemas = [("R", ("A", "B")), ("S", ("B",))]
        compiled, generic = (
            ViewTreeEngine(query, seeded_db(schemas, random.Random(3))),
            ViewTreeEngine(
                query, seeded_db(schemas, random.Random(3)),
                compile_enum=False,
            ),
        )
        # Nothing to compile for an empty head: scalar() serves it.
        assert not compiled.enum_compiled
        assert list(compiled.enumerate()) == list(generic.enumerate())
        assert compiled.scalar() == generic.scalar()

    def test_non_free_top_order_still_raises(self):
        query = parse_query("Q(A, C) = R(A, B) * S(B, C)")
        schemas = [("R", ("A", "B")), ("S", ("B", "C"))]
        engine = ViewTreeEngine(query, seeded_db(schemas, random.Random(1)))
        # The canonical order for this query is not free-top: no plan is
        # compiled and enumeration reports the structural failure as
        # before.
        assert not engine.enum_compiled
        with pytest.raises(ValueError, match="free-top"):
            list(engine.enumerate())

    def test_two_interleaved_iterators_on_one_engine(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        compiled, generic = twin_engines(query, schemas, seed=41)
        expected = list(generic.enumerate())
        first = compiled.enumerate()
        second = compiled.enumerate()
        merged_first, merged_second = [], []
        # Alternate consumption: each in-flight kernel run keeps its own
        # slot array and stack, so interleaving must not cross wires.
        for left, right in zip(first, second):
            merged_first.append(left)
            merged_second.append(right)
        assert merged_first == expected
        assert merged_second == expected

    def test_rebuild_keeps_plan_valid(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        compiled, generic = twin_engines(query, schemas, seed=13)
        for update in valid_stream(random.Random(2), {"R": 2, "S": 2}, 200):
            compiled.apply(update)
            generic.apply(update)
        compiled.rebuild()
        generic.rebuild()
        # The plan references view/guard/leaf objects that rebuild()
        # refills in place, so it stays valid without recompilation.
        assert list(compiled.enumerate()) == list(generic.enumerate())


class TestStrategies:
    def _replay(self, strategy, stream):
        for update in stream:
            strategy.apply(update)
        return sorted(strategy.enumerate())

    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_all_four_strategies_agree(self, name):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        stream = list(valid_stream(random.Random(19), {"R": 2, "S": 2}, 250))
        fast = make_strategy(
            name, query, seeded_db(schemas, random.Random(29)),
            compile_enum=True,
        )
        slow = make_strategy(
            name, query, seeded_db(schemas, random.Random(29)),
            compile_enum=False,
        )
        assert self._replay(fast, stream) == self._replay(slow, stream)

    def test_fact_strategies_carry_the_flag(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        eager = make_strategy(
            "eager-fact", query, seeded_db(schemas, random.Random(1))
        )
        assert eager.engine.enum_compiled
        lazy = make_strategy(
            "lazy-fact", query, seeded_db(schemas, random.Random(1))
        )
        lazy.apply(Update("R", (1, 2), 1))
        list(lazy.enumerate())  # triggers the rebuild
        assert lazy._engine.enum_compiled
        lazy_off = make_strategy(
            "lazy-fact", query, seeded_db(schemas, random.Random(1)),
            compile_enum=False,
        )
        lazy_off.apply(Update("R", (1, 2), 1))
        list(lazy_off.enumerate())
        assert not lazy_off._engine.enum_compiled


class TestSharded:
    def test_sharded_matches_unsharded(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        plain = ViewTreeEngine(
            query, seeded_db(schemas, random.Random(8)), compile_enum=False
        )
        sharded = ShardedEngine(
            query, seeded_db(schemas, random.Random(8)), shards=3,
            executor="serial",
        )
        for engine in sharded.engines:
            assert engine.enum_compiled
        for update in valid_stream(random.Random(12), {"R": 2, "S": 2}, 400):
            plain.apply(update)
            sharded.apply(update)
        assert dict(sharded.enumerate()) == dict(plain.enumerate())
        assert (
            sharded.output_relation().to_dict()
            == plain.output_relation().to_dict()
        )
        reference = plain.output_relation()
        for y in range(8):
            key = (y, 1, 2)
            assert sharded.lookup(key) == reference.get(key)
        sharded.close()

    def test_plans_survive_process_pool(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        reference = ViewTreeEngine(
            query, seeded_db(schemas, random.Random(4)), compile_enum=False
        )
        with ShardedEngine(
            query, seeded_db(schemas, random.Random(4)), shards=2,
            executor="process", ipc="pickle-engine",
        ) as sharded:
            stream = list(
                valid_stream(random.Random(6), {"R": 2, "S": 2}, 200)
            )
            reference.apply_batch(stream)
            sharded.apply_batch(stream)  # ships engines through pickle
            for engine in sharded.engines:
                assert engine.enum_compiled  # adopted engines kept plans
            assert dict(sharded.enumerate()) == dict(reference.enumerate())

    def test_engine_pickle_round_trip(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        engine = ViewTreeEngine(query, seeded_db(schemas, random.Random(21)))
        for update in valid_stream(random.Random(22), {"R": 2, "S": 2}, 150):
            engine.apply(update)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone.enum_compiled
        assert list(clone.enumerate()) == list(engine.enumerate())
        # The unpickled plan's guard references are identical objects to
        # the unpickled tree's own relations (pickle memo), so updates
        # applied post-restore stay visible to the kernel.
        clone.apply(Update("R", (1, 1), 1), update_base=True)
        engine.apply(Update("R", (1, 1), 1), update_base=True)
        assert list(clone.enumerate()) == list(engine.enumerate())


class TestCQAP:
    def test_access_requests_identical(self):
        query = parse_query("Q(A | B) = R(A, B) * S(B)")
        schemas = [("R", ("A", "B")), ("S", ("B",))]
        compiled = CQAPEngine(query, seeded_db(schemas, random.Random(14)))
        generic = CQAPEngine(
            query, seeded_db(schemas, random.Random(14)), compile_enum=False
        )
        for engine in compiled.engines:
            assert engine.enum_compiled
        for engine in generic.engines:
            assert not engine.enum_compiled
        for update in valid_stream(random.Random(15), {"R": 2, "S": 1}, 300):
            compiled.apply(update)
            generic.apply(update)
        for b in range(10):
            assert list(compiled.answer({"B": b})) == list(
                generic.answer({"B": b})
            )


class TestObservability:
    def _engine_with_stats(self, seed=33):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        engine = ViewTreeEngine(query, seeded_db(schemas, random.Random(seed)))
        return engine, engine.attach_stats()

    def test_kernel_counters_record(self):
        engine, stats = self._engine_with_stats()
        assert stats.enum_compiled == 0
        list(engine.enumerate())
        assert stats.enum_compiled == 1
        assert stats.enum_guard_probes > 0
        list(engine.enumerate(prebound={"Y": 0}))
        assert stats.enum_compiled == 2
        payload = stats.to_dict()
        enumeration = payload["enumeration"]
        assert enumeration["compiled"] == 2
        assert enumeration["guard_probes"] == stats.enum_guard_probes
        assert enumeration["lazy_refreshes"] == 0
        json.dumps(payload)  # stays plain-JSON (repro.obs/1)

    def test_output_relation_records_no_phantom_samples(self):
        engine, stats = self._engine_with_stats()
        engine.output_relation()
        assert stats.enumerations == 0
        assert stats.tuples_enumerated == 0
        assert stats.enum_delay.count == 0
        assert stats.enum_compiled == 0
        # ... while a real enumeration request still samples delay.
        list(engine.enumerate())
        assert stats.enumerations == 1
        assert stats.tuples_enumerated > 0

    def test_sharded_output_relation_no_phantom_shard_samples(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        sharded = ShardedEngine(
            query, seeded_db(schemas, random.Random(2)), shards=2,
            executor="serial",
        )
        sharded.output_relation()
        for stats in sharded.shard_stats:
            assert stats.enumerations == 0
            assert stats.tuples_enumerated == 0
        list(sharded.enumerate())
        assert sum(s.enum_compiled for s in sharded.shard_stats) == 2
        sharded.close()

    def test_lazy_refreshes_counted(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        for name in ("lazy-list", "lazy-fact"):
            strategy = make_strategy(
                name, query, seeded_db(schemas, random.Random(44))
            )
            stats = strategy.attach_stats()
            list(strategy.enumerate())
            assert stats.lazy_refreshes == 0  # clean: nothing to refresh
            strategy.apply(Update("R", (1, 2), 1))
            list(strategy.enumerate())
            assert stats.lazy_refreshes == 1
            list(strategy.enumerate())
            assert stats.lazy_refreshes == 1  # still clean: no recompute
            strategy.apply(Update("S", (1, 3), 1))
            list(strategy.enumerate())
            assert stats.lazy_refreshes == 2

    def test_merge_carries_kernel_counters(self):
        left = MaintenanceStats()
        left.record_compiled_enumeration()
        left.record_enum_probes(7)
        right = MaintenanceStats()
        right.record_lazy_refresh()
        right.record_enum_probes(5)
        left.merge(right)
        assert left.enum_compiled == 1
        assert left.enum_guard_probes == 12
        assert left.lazy_refreshes == 1
        labelled = MaintenanceStats()
        labelled.merge(left, label="shard0")
        assert labelled.enum_guard_probes == 12
        assert labelled.shard_summaries["shard0"]["enum_guard_probes"] == 12


class TestPlannerAndCLI:
    def test_planner_marks_enum_kernel(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        plan = plan_maintenance(query)
        assert plan.enum_kernel
        assert "compiled enumeration" in str(plan)
        assert not plan_maintenance(query, compile_enum=False).enum_kernel
        sharded = plan_maintenance(query, shards=4)
        assert sharded.strategy == "sharded-viewtree" and sharded.enum_kernel
        cqap = plan_maintenance(parse_query("Q(A | B) = R(A, B) * S(B)"))
        assert cqap.strategy == "cqap" and cqap.enum_kernel
        delta = plan_maintenance(parse_query("Q() = R(A,B) * S(B,C) * T(C,A)"))
        assert not delta.enum_kernel

    def test_facade_threads_the_flag(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        on = IVMEngine(query, seeded_db(schemas, random.Random(3)))
        assert on.backend.enum_compiled
        off = IVMEngine(
            query, seeded_db(schemas, random.Random(3)), compile_enum=False
        )
        assert not off.backend.enum_compiled
        assert dict(on.enumerate()) == dict(off.enumerate())

    def test_cli_no_compile_enum(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "stats.json"
        assert (
            main(
                [
                    "stats", "Q(Y,X,Z) = R(Y,X) * S(Y,Z)",
                    "--updates", "200", "--prefill", "10",
                    "--no-compile-enum", "--json", str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["meta"]["enum_compiled"] is False
        assert payload["stats"]["enumeration"]["compiled"] == 0
        assert (
            main(
                [
                    "stats", "Q(Y,X,Z) = R(Y,X) * S(Y,Z)",
                    "--updates", "200", "--prefill", "10",
                    "--json", str(out),
                ]
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(out.read_text())
        assert payload["meta"]["enum_compiled"] is True
        assert payload["stats"]["enumeration"]["compiled"] > 0
