"""Static cost analysis of variable orders (repro.query.analysis)."""

from repro.query import (
    analyse_order,
    canonical_order,
    order_for,
    parse_query,
    search_order,
    update_cost_bounds,
)


class TestUpdateCostBounds:
    def test_q_hierarchical_all_constant(self):
        q = parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)")
        bounds = update_cost_bounds(canonical_order(q))
        assert all(b.constant for b in bounds)
        assert all(b.bound == "O(1)" for b in bounds)

    def test_non_q_hierarchical_blocking_side(self):
        q = parse_query("Q(A) = R(A, B) * S(B)")
        bounds = {
            b.atom.relation: b
            for b in update_cost_bounds(search_order(q, require_free_top=True))
        }
        assert bounds["R"].constant
        assert not bounds["S"].constant
        assert bounds["S"].blocking_variables is not None

    def test_path_query_middle_updates(self):
        q = parse_query("Q(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)")
        bounds = {
            b.atom.relation: b
            for b in update_cost_bounds(search_order(q, require_free_top=True))
        }
        # Not q-hierarchical: at least one relation must be non-constant
        # (Theorem 4.1's lower bound says they cannot all be O(1)).
        assert not all(b.constant for b in bounds.values())

    def test_bound_str_mentions_blocker(self):
        q = parse_query("Q(A) = R(A, B) * S(B)")
        bounds = update_cost_bounds(search_order(q, require_free_top=True))
        text = "\n".join(str(b) for b in bounds)
        assert "O(N) worst-case" in text
        assert "unbound sibling" in text


class TestOrderAnalysis:
    def test_q_hierarchical_report(self):
        q = parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)")
        analysis = analyse_order(canonical_order(q))
        assert analysis.all_updates_constant
        assert analysis.constant_delay
        assert analysis.max_dependency == 1
        assert "free-top" in analysis.render()

    def test_boolean_projection_report(self):
        q = parse_query("Q(X) = R(X, Y) * S(Y)")  # hierarchical, not q
        analysis = analyse_order(order_for(q))
        assert not analysis.constant_delay  # canonical order: Y on top

    def test_cyclic_query_analysis(self):
        q = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
        analysis = analyse_order(order_for(q))
        assert analysis.max_dependency == 2
        # On the triangle, deltas can never bind all sibling deps.
        assert not analysis.all_updates_constant

    def test_consistency_with_staticdyn(self):
        from repro.staticdyn import constant_update_atoms, find_static_dynamic_order

        q = parse_query("Q(A,B,C) = R(A,D) * S(A,B) * T@s(B,C)")
        order = find_static_dynamic_order(q)
        via_staticdyn = constant_update_atoms(order)
        via_analysis = {
            b.atom for b in update_cost_bounds(order) if b.constant
        }
        assert via_staticdyn == via_analysis
