"""OuMv and the Theorem 3.4 reduction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Update
from repro.delta import DeltaQueryEngine
from repro.lowerbounds import (
    OuMvInstance,
    paper_example_instance,
    solve_oumv_via_ivm,
)
from repro.naive import evaluate_scalar


class TestOuMvInstance:
    def test_random_shape(self):
        instance = OuMvInstance.random(8, seed=1)
        assert instance.n == 8
        assert len(instance.matrix) == 8
        assert len(instance.pairs) == 8

    def test_rounds_override(self):
        instance = OuMvInstance.random(6, seed=1, rounds=2)
        assert len(instance.pairs) == 2

    def test_naive_solver_simple(self):
        matrix = [[True]]
        assert OuMvInstance(1, matrix, [([True], [True])]).solve_naive() == [True]
        assert OuMvInstance(1, matrix, [([False], [True])]).solve_naive() == [False]

    def test_all_zero_matrix(self):
        instance = OuMvInstance.random(5, density=0.0, seed=0)
        assert instance.solve_naive() == [False] * 5


class TestReduction:
    def test_paper_example(self):
        instance, expected = paper_example_instance()
        assert solve_oumv_via_ivm(instance) == [expected]

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_naive_random(self, seed):
        instance = OuMvInstance.random(12, density=0.15, seed=seed, rounds=6)
        assert solve_oumv_via_ivm(instance) == instance.solve_naive()

    def test_dense_instance(self):
        instance = OuMvInstance.random(10, density=0.6, seed=3, rounds=5)
        assert solve_oumv_via_ivm(instance) == instance.solve_naive()

    @given(st.integers(0, 10_000), st.floats(0.05, 0.5))
    @settings(max_examples=15, deadline=None)
    def test_property_agreement(self, seed, density):
        instance = OuMvInstance.random(7, density=density, seed=seed, rounds=4)
        assert solve_oumv_via_ivm(instance) == instance.solve_naive()

    def test_reduction_with_alternate_engine(self):
        """The reduction is engine-agnostic: a first-order delta engine
        maintaining the Boolean triangle query works too (just slower)."""
        from repro.data import Database
        from repro.query import parse_query

        class DeltaTriangle:
            def __init__(self):
                db = Database()
                for name in ("R", "S", "T"):
                    db.create(name, ("X", "Y"))
                self.engine = DeltaQueryEngine(
                    parse_query("Q() = R(A,B) * S(B,C) * T(C,A)"), db
                )

            def apply(self, update):
                self.engine.update(update)

            def detect(self):
                return self.engine.scalar() > 0

        instance = OuMvInstance.random(8, density=0.2, seed=9, rounds=4)
        assert (
            solve_oumv_via_ivm(instance, DeltaTriangle)
            == instance.solve_naive()
        )
