"""Quality of the searched variable orders: the optimizer finds the
known-optimal shapes on reference queries."""

from repro.query import (
    canonical_order,
    order_for,
    parse_query,
    search_order,
)


class TestKnownOptima:
    def test_path_query_gets_dep_one(self):
        """A chain order with |dep| = 1 exists for any path join."""
        for length in range(2, 6):
            atoms = " * ".join(
                f"R{i}(V{i}, V{i+1})" for i in range(length)
            )
            variables = ", ".join(f"V{i}" for i in range(length + 1))
            q = parse_query(f"Q({variables}) = {atoms}")
            assert search_order(q).max_dependency_size() == 1

    def test_star_query_gets_dep_one(self):
        q = parse_query(
            "Q(H, A, B, C) = R(H, A) * S(H, B) * T(H, C)"
        )
        assert search_order(q).max_dependency_size() == 1

    def test_triangle_needs_dep_two(self):
        # No tree order does better than |dep| = 2 on a cyclic query.
        q = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
        assert search_order(q).max_dependency_size() == 2

    def test_four_cycle_needs_dep_two(self):
        q = parse_query("Q() = R(A,B) * S(B,C) * T(C,D) * U(D,A)")
        assert search_order(q).max_dependency_size() == 2

    def test_clique_four_needs_dep_three(self):
        q = parse_query(
            "Q() = R1(A,B) * R2(B,C) * R3(C,D) * R4(A,C) * R5(B,D) * R6(A,D)"
        )
        assert search_order(q).max_dependency_size() == 3

    def test_hierarchical_search_matches_canonical(self):
        for text in (
            "Q(Y,X,Z) = R(Y,X) * S(Y,Z)",
            "Q(A,B,C) = R(A,B) * S(B,C)",
            "Q(A) = R(A, B) * S(B)",
        ):
            q = parse_query(text)
            assert (
                search_order(q).max_dependency_size()
                == canonical_order(q).max_dependency_size()
            )

    def test_free_top_constraint_can_cost_dependency(self):
        """Forcing free variables to the top may enlarge dependencies —
        the price of enumerability."""
        q = parse_query("Q(D) = R(A, B) * S(B, C) * T(C, D)")
        unconstrained = search_order(q, prefer_free_top=False)
        forced = search_order(q, require_free_top=True)
        assert forced.is_free_top()
        assert forced.max_dependency_size() >= unconstrained.max_dependency_size()

    def test_order_for_never_fails_on_connected_queries(self):
        for text in (
            "Q() = R(A,B,C) * S(C,D) * T(D,A)",
            "Q(A) = R(A,B) * S(B,C) * T(A,C)",
            "Q(A, E) = R(A,B) * S(B,C) * T(C,D) * U(D,E)",
        ):
            order = order_for(parse_query(text))
            assert order.max_dependency_size() >= 1
