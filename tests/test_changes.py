"""Per-epoch output change streams (`repro.viewtree.changes`).

The contract under test: applying the emitted delta stream to a stale
materialization is **bit-identical** to a fresh drain — across rings
(including the non-exact-zero Provenance/Covariance payloads), the four
Fig. 4 strategies, and the serial/thread/process(delta-IPC) shard
executors — and a subscriber that cannot be patched (epoch gap, ratio
blow-up, worker resync) falls back to a counted full drain instead of
serving partial state.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Database, Update
from repro.query import parse_query
from repro.rings import (
    B,
    MIN_PLUS,
    PROVENANCE,
    CovarianceRing,
    LiftingMap,
    R,
    Z,
    moment_lifting,
)
from repro.shard import ShardWorkerError, ShardedEngine
from repro.viewtree import (
    RETAIN_EPOCHS,
    EpochGapError,
    ViewTreeEngine,
    make_strategy,
    STRATEGIES,
)
from tests.conftest import valid_stream

QUERY = parse_query("Q(B, A) = R(B, A) * S(B)")
SCHEMAS = {"R": 2, "S": 1}


def fresh_db(ring=Z, rng=None, rows=0, domain=8):
    db = Database(ring=ring)
    db.create("R", ("B", "A"))
    db.create("S", ("B",))
    if rng is not None:
        for _ in range(rows):
            db["R"].insert(rng.randrange(domain), rng.randrange(domain))
            db["S"].insert(rng.randrange(domain))
    return db


def ring_stream(rng, ring, count, deletes, domain=8):
    """A valid stream with ring-one payloads (negated for deletes)."""
    stream = []
    for update in valid_stream(
        rng, SCHEMAS, count, domain=domain,
        delete_prob=0.25 if deletes else 0.0,
    ):
        payload = ring.one if update.payload > 0 else ring.neg(ring.one)
        stream.append(Update(update.relation, update.key, payload))
    return stream


def drive_and_check(engine, stream, publish_every=20, refresh_every=2):
    """Mixed applies/batches with periodic publishes and catch-ups.

    The subscriber skips every other publish, so refreshes compose
    multi-epoch deltas (still inside the retained window); every refresh
    must land bit-identical to a fresh snapshot drain.  The generous
    ratio threshold keeps the patch path engaged even on the small
    states these tests build (the fallback path has its own tests).
    """
    view = engine.subscribe(ratio_threshold=100.0)
    assert dict(view.items()) == dict(engine.enumerate_snapshot())
    publishes = 0
    cursor = 0
    rng = random.Random(0xD1FF)
    while cursor < len(stream):
        if rng.random() < 0.5:
            engine.apply(stream[cursor])
            cursor += 1
        else:
            step = min(rng.randrange(2, publish_every), len(stream) - cursor)
            engine.apply_batch(stream[cursor:cursor + step])
            cursor += step
        if cursor // publish_every > publishes:
            engine.publish_epoch()
            publishes += 1
            if publishes % refresh_every == 0:
                view.refresh()
                assert dict(view.items()) == dict(
                    engine.enumerate_snapshot()
                )
    engine.publish_epoch()
    view.refresh()
    fresh = dict(engine.enumerate_snapshot())
    assert dict(view.items()) == fresh
    return view, fresh


class TestSingleEngine:
    def test_counting_stream_bit_identical(self, rng):
        engine = ViewTreeEngine(QUERY, fresh_db(rng=rng, rows=40))
        stream = valid_stream(rng, SCHEMAS, 400, domain=8)
        view, fresh = drive_and_check(engine, stream)
        # The maintained dict is also bit-identical to the live drain.
        assert fresh == engine.output_relation().to_dict()
        assert view.full_refreshes == 0

    @pytest.mark.parametrize(
        "ring,deletes",
        [(Z, True), (R, True), (B, False), (MIN_PLUS, False),
         (PROVENANCE, False)],
        ids=["int", "float", "boolean", "min-plus", "provenance"],
    )
    def test_ring_matrix(self, ring, deletes):
        # Non-exact-zero payloads (float tolerance, provenance
        # structural zero) exercise the is-it-really-gone paths: a
        # patched absence must match what a fresh enumeration omits.
        rng = random.Random(17)
        engine = ViewTreeEngine(QUERY, fresh_db(ring=ring))
        stream = ring_stream(rng, ring, 300, deletes)
        view, fresh = drive_and_check(engine, stream)
        assert dict(view.items()) == fresh

    def test_covariance_ring_with_lifting(self):
        # Covariance payloads (float moment vectors, no exact zero)
        # through a lifting: the maintained view must carry the exact
        # Moments objects a fresh drain enumerates.
        ring = CovarianceRing()
        query = parse_query("Q(A) = R(A, V) * S(A)")
        lifting = LiftingMap(ring, {"V": moment_lifting("V")})
        db = Database(ring=ring)
        db.create("R", ("A", "V"))
        db.create("S", ("A",))
        engine = ViewTreeEngine(query, db, lifting=lifting)
        view = engine.subscribe()
        rng = random.Random(23)
        live: list[tuple] = []
        for step in range(200):
            if rng.random() < 0.6:
                if live and rng.random() < 0.3:
                    key = live.pop(rng.randrange(len(live)))
                    engine.apply(Update("R", key, ring.neg(ring.one)))
                else:
                    key = (rng.randrange(5), rng.randrange(1, 9))
                    live.append(key)
                    engine.apply(Update("R", key, ring.one))
            else:
                engine.apply(Update("S", (rng.randrange(5),), ring.one))
            if step % 40 == 39:
                engine.publish_epoch()
                view.refresh()
                assert dict(view.items()) == dict(
                    engine.enumerate_snapshot()
                )

    def test_empty_head_scalar_maintained(self, rng):
        query = parse_query("Q() = R(B, A) * S(B)")
        engine = ViewTreeEngine(query, fresh_db(rng=rng, rows=30))
        view = engine.subscribe()
        assert view.scalar == engine.scalar_snapshot()
        for _ in range(5):
            for update in valid_stream(rng, SCHEMAS, 40, domain=6):
                engine.apply(update)
            engine.publish_epoch()
            view.refresh()
            assert view.scalar == engine.scalar_snapshot()

    def test_non_free_top_order_unsupported(self):
        db = Database()
        db.create("R", ("A", "B"))
        db.create("S", ("B", "C"))
        engine = ViewTreeEngine(parse_query("Q(C) = R(A,B) * S(B,C)"), db)
        assert not engine.supports_changes
        with pytest.raises(TypeError):
            engine.track_changes()

    def test_changes_obs_block(self, rng):
        engine = ViewTreeEngine(QUERY, fresh_db(rng=rng, rows=40))
        stats = engine.attach_stats()
        view = engine.subscribe(ratio_threshold=100.0)
        for update in valid_stream(rng, SCHEMAS, 60, domain=8):
            engine.apply(update)
        engine.publish_epoch()
        view.refresh()
        assert stats.deltas_emitted > 0
        assert stats.delta_tuples > 0
        assert stats.tuples_patched > 0
        block = stats.to_dict()["changes"]
        assert block["deltas_emitted"] == stats.deltas_emitted
        assert block["patch_time"]["count"] == 1
        assert block["delta_ratio_pct"]["count"] == 1
        # Per-epoch output-delta size rides along in the epochs block.
        assert stats.to_dict()["epochs"]["output_delta_tuples"] == (
            stats.delta_tuples
        )
        assert "changes" in stats.render()


class TestEpochGaps:
    def test_gap_raises_typed_error(self, rng):
        engine = ViewTreeEngine(QUERY, fresh_db(rng=rng, rows=20))
        engine.track_changes()
        base = engine.epoch
        for _ in range(RETAIN_EPOCHS + 2):
            engine.apply(Update("R", (1, 1), 1))
            engine.publish_epoch()
        with pytest.raises(EpochGapError):
            engine.changes_since(base)
        # The newest retained epochs still compose.
        assert len(engine.changes_since(engine.epoch)) == 0

    def test_future_epoch_rejected(self, rng):
        engine = ViewTreeEngine(QUERY, fresh_db(rng=rng, rows=10))
        engine.track_changes()
        with pytest.raises(ValueError):
            engine.changes_since(engine.epoch + 1)

    def test_subscriber_falls_back_and_recovers(self, rng):
        engine = ViewTreeEngine(QUERY, fresh_db(rng=rng, rows=30))
        view = engine.subscribe()
        for _ in range(RETAIN_EPOCHS + 3):
            for update in valid_stream(rng, SCHEMAS, 10, domain=6):
                engine.apply(update)
            engine.publish_epoch()
        view.refresh()
        assert view.full_refreshes == 1
        assert dict(view.items()) == dict(engine.enumerate_snapshot())
        # Back inside the window: the next refresh patches again.
        engine.apply(Update("R", (2, 2), 1))
        engine.publish_epoch()
        view.refresh()
        assert view.full_refreshes == 1
        assert dict(view.items()) == dict(engine.enumerate_snapshot())

    def test_ratio_threshold_triggers_full_drain(self, rng):
        engine = ViewTreeEngine(QUERY, fresh_db(rng=rng, rows=30))
        stats = engine.attach_stats()
        view = engine.subscribe(ratio_threshold=0.0)
        engine.apply(Update("R", (3, 3), 1))
        engine.publish_epoch()
        view.refresh()
        assert view.full_refreshes == 1
        assert stats.full_refresh_fallbacks == 1
        assert dict(view.items()) == dict(engine.enumerate_snapshot())


class TestStrategies:
    def test_all_four_strategies_match_maintained_view(self, rng):
        """The delta-maintained dict agrees with every Fig. 4 strategy.

        The change stream is emitted by the eager-fact view tree; the
        other strategies replay the identical stream and their fresh
        drains must coincide with the patched materialization.
        """
        stream = valid_stream(rng, SCHEMAS, 250, domain=7)
        strategies = {
            name: make_strategy(name, QUERY, fresh_db())
            for name in sorted(STRATEGIES)
        }
        engine = strategies["eager-fact"].engine
        view = engine.subscribe()
        for i, update in enumerate(stream):
            for strategy in strategies.values():
                strategy.apply(update)
            if i % 50 == 49:
                engine.publish_epoch()
                view.refresh()
                maintained = dict(view.items())
                for name, strategy in strategies.items():
                    got: dict = {}
                    for key, payload in strategy.enumerate():
                        got[key] = (
                            got[key] + payload if key in got else payload
                        )
                    assert got == maintained, name


EXECUTORS = ("serial", "thread", "process")


class TestSharded:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_merged_deltas_bit_identical(self, executor, rng):
        db = fresh_db(rng=rng, rows=120, domain=12)
        engine = ShardedEngine(QUERY, db, shards=3, executor=executor)
        try:
            view = engine.subscribe(ratio_threshold=100.0)
            assert dict(view.items()) == dict(engine.enumerate_snapshot())
            for _ in range(5):
                engine.apply_batch(valid_stream(rng, SCHEMAS, 24, domain=12))
                engine.publish_epoch()
                view.refresh()
                assert dict(view.items()) == dict(
                    engine.enumerate_snapshot()
                )
            assert view.full_refreshes == 0
        finally:
            engine.close()

    def test_worker_retain_epochs_boundary(self, rng):
        """The worker CHANGES command refuses evicted coordinator epochs.

        Workers map coordinator epoch numbers to their own engine epochs
        and retain only RETAIN_EPOCHS + 1 entries; asking for an older
        epoch must surface the typed gap, never a partial delta — and
        the coordinator-level ``changes_since`` guard mirrors it.
        """
        db = fresh_db(rng=rng, rows=60, domain=10)
        engine = ShardedEngine(QUERY, db, shards=2, executor="process")
        try:
            view = engine.subscribe()
            evicted = engine.epoch  # the tracking-baseline publish
            for _ in range(RETAIN_EPOCHS + 2):
                engine.apply(Update("R", (1, 1), 1))
                engine.publish_epoch()
            with pytest.raises(EpochGapError):
                engine.changes_since(evicted)
            pool = engine._ensure_workers()
            with pytest.raises(ShardWorkerError, match="EpochGapError"):
                pool.call(0, ("changes", evicted, engine.epoch))
            # The stale subscriber recovers through a counted full drain.
            view.refresh()
            assert view.full_refreshes == 1
            assert dict(view.items()) == dict(engine.enumerate_snapshot())
        finally:
            engine.close()

    def test_stale_tracker_resyncs_after_publish(self, rng):
        """A pool rebuild marks the tracker stale; subscribers full-drain
        once and the stream then resumes patching."""
        db = fresh_db(rng=rng, rows=60, domain=10)
        engine = ShardedEngine(QUERY, db, shards=2, executor="thread")
        try:
            view = engine.subscribe()
            engine._change_tracker.mark_stale()
            engine.apply(Update("R", (4, 4), 1))
            engine.publish_epoch()  # resync happens here
            view.refresh()
            assert view.full_refreshes == 1
            assert dict(view.items()) == dict(engine.enumerate_snapshot())
            engine.apply(Update("R", (5, 5), 1))
            engine.publish_epoch()
            view.refresh()
            assert view.full_refreshes == 1  # patched, no second drain
            assert dict(view.items()) == dict(engine.enumerate_snapshot())
        finally:
            engine.close()

    def test_empty_head_scalar_via_workers(self, rng):
        query = parse_query("Q() = R(B, A) * S(B)")
        db = fresh_db(rng=rng, rows=40, domain=8)
        engine = ShardedEngine(query, db, shards=2, executor="process")
        try:
            view = engine.subscribe()
            engine.apply(Update("R", (2, 2), 5))
            engine.apply(Update("S", (2,), 1))
            engine.publish_epoch()
            view.refresh()
            assert view.scalar == engine.scalar_snapshot()
        finally:
            engine.close()


class TestFuzzInterleavings:
    @given(
        st.integers(0, 10_000),
        st.lists(
            st.sampled_from(["apply", "batch", "publish", "refresh"]),
            min_size=5,
            max_size=50,
        ),
    )
    @settings(max_examples=30, deadline=None)
    def test_interleaved_ops_stay_bit_identical(self, seed, ops):
        rng = random.Random(seed)
        engine = ViewTreeEngine(QUERY, fresh_db(rng=rng, rows=15, domain=6))
        view = engine.subscribe()
        stream = valid_stream(rng, SCHEMAS, 300, domain=6)
        cursor = 0
        for op in ops:
            if op == "apply" and cursor < len(stream):
                engine.apply(stream[cursor])
                cursor += 1
            elif op == "batch":
                step = min(rng.randrange(1, 9), len(stream) - cursor)
                if step > 0:
                    engine.apply_batch(stream[cursor:cursor + step])
                    cursor += step
            elif op == "publish":
                engine.publish_epoch()
            else:  # refresh: catch up however far behind (gaps included)
                view.refresh()
                assert dict(view.items()) == dict(
                    engine.enumerate_snapshot()
                )
        engine.publish_epoch()
        view.refresh()
        fresh = dict(engine.enumerate_snapshot())
        assert dict(view.items()) == fresh
        assert fresh == engine.output_relation().to_dict()
