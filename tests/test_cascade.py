"""Cascading q-hierarchical queries (Section 4.2)."""

import pytest

from repro.cascade import CascadeEngine, StaleCascadeError
from repro.data import Database, Update
from repro.naive import evaluate
from repro.query import parse_query, rewrite_using, find_embedding
from tests.conftest import valid_stream

Q1 = parse_query("Q1(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)")
Q2 = parse_query("Q2(A,B,C) = R(A,B) * S(B,C)")


def fresh_db():
    db = Database()
    for name in ("R", "S", "T"):
        db.create(name, ("X", "Y"))
    return db


class TestRewriting:
    def test_embedding_found(self):
        mapping = find_embedding(Q2, Q1)
        assert mapping == {"A": "A", "B": "B", "C": "C"}

    def test_renamed_embedding(self):
        pattern = parse_query("P(U,V,W) = R(U,V) * S(V,W)")
        mapping = find_embedding(pattern, Q1)
        assert mapping == {"U": "A", "V": "B", "W": "C"}

    def test_no_embedding(self):
        pattern = parse_query("P(A,B) = R(A,B) * U(B)")
        assert find_embedding(pattern, Q1) is None

    def test_rewriting_is_equivalent_on_data(self, rng):
        db = fresh_db()
        for update in valid_stream(rng, {"R": 2, "S": 2, "T": 2}, 150, delete_prob=0.0):
            db[update.relation].add(update.key, update.payload)
        rewriting = rewrite_using(Q1, Q2)
        # Materialize Q2, install it as a relation, evaluate the rewriting.
        q2_out = evaluate(Q2, db)
        db2 = Database()
        q2_rel = db2.create("Q2", ("A", "B", "C"))
        for key, payload in q2_out.items():
            q2_rel.add(key, payload)
        db2.add_relation(db["T"])
        assert evaluate(rewriting, db2) == evaluate(Q1, db)

    def test_unsound_rewriting_rejected(self):
        # The view projects away a variable the rest still needs.
        view = parse_query("V(A) = R(A,B) * S(B,C)")
        assert rewrite_using(Q1, view) is None

    def test_rewriting_of_unrelated_query(self):
        view = parse_query("V(A,B) = U(A,B)")
        assert rewrite_using(Q1, view) is None


class TestCascadeEngine:
    def test_rejects_non_q_hierarchical_view(self):
        db = fresh_db()
        bad_q2 = parse_query("Q2(A,C) = R(A,B) * S(B,C)")  # projection breaks q
        with pytest.raises(ValueError):
            CascadeEngine(Q1, bad_q2, db)

    def test_rejects_when_no_rewriting(self):
        db = fresh_db()
        db.create("U", ("X", "Y"))
        unrelated = parse_query("Q2(A,B) = U(A,B)")
        with pytest.raises(ValueError):
            CascadeEngine(Q1, unrelated, db)

    def test_stale_enforcement_and_refresh(self, rng):
        db = fresh_db()
        engine = CascadeEngine(Q1, Q2, db)
        engine.apply(Update("R", (1, 2), 1))
        with pytest.raises(StaleCascadeError):
            list(engine.enumerate_q1())
        list(engine.enumerate_q2())
        list(engine.enumerate_q1())  # now fine

    def test_updates_to_rest_do_not_stale(self):
        db = fresh_db()
        engine = CascadeEngine(Q1, Q2, db)
        engine.apply(Update("T", (1, 2), 1))
        list(engine.enumerate_q1())  # T is not in Q2: no staleness

    def test_non_strict_auto_refreshes(self):
        db = fresh_db()
        engine = CascadeEngine(Q1, Q2, db)
        engine.apply(Update("R", (1, 2), 1))
        engine.apply(Update("S", (2, 3), 1))
        engine.apply(Update("T", (3, 4), 1))
        out = dict(engine.enumerate_q1(strict=False))
        assert out == {(1, 2, 3, 4): 1}

    def test_differential_with_inserts_and_deletes(self, rng):
        db = fresh_db()
        engine = CascadeEngine(Q1, Q2, db)
        stream = valid_stream(rng, {"R": 2, "S": 2, "T": 2}, 300, domain=7)
        for i, update in enumerate(stream):
            engine.apply(update)
            if i % 60 == 59:
                q2_out = dict(engine.enumerate_q2())
                assert q2_out == evaluate(Q2, db).to_dict()
                q1_out = dict(engine.enumerate_q1())
                assert q1_out == evaluate(Q1, db).to_dict()

    def test_vanished_q2_tuples_are_retracted(self):
        db = fresh_db()
        engine = CascadeEngine(Q1, Q2, db)
        for update in [
            Update("R", (1, 2), 1),
            Update("S", (2, 3), 1),
            Update("T", (3, 4), 1),
        ]:
            engine.apply(update)
        list(engine.enumerate_q2())
        assert dict(engine.enumerate_q1()) == {(1, 2, 3, 4): 1}
        engine.apply(Update("S", (2, 3), -1))  # Q2's only tuple vanishes
        list(engine.enumerate_q2())
        assert dict(engine.enumerate_q1()) == {}

    def test_refresh_is_equivalent_to_enumerate_drain(self):
        db = fresh_db()
        engine = CascadeEngine(Q1, Q2, db)
        engine.apply(Update("R", (0, 0), 1))
        engine.refresh()
        list(engine.enumerate_q1())  # no StaleCascadeError
