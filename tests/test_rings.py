"""Ring and lifting-function tests, including property-based axiom checks."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.rings import (
    B,
    MIN_PLUS,
    R,
    Z,
    BooleanSemiring,
    CovarianceRing,
    FloatRing,
    IntegerRing,
    LiftingMap,
    Moments,
    ProductRing,
    Ring,
    check_ring_axioms,
    count_lifting,
    identity_lifting,
    moment_lifting,
)


class TestIntegerRing:
    def test_identities(self):
        assert Z.zero == 0
        assert Z.one == 1

    def test_operations(self):
        assert Z.add(2, 3) == 5
        assert Z.mul(2, 3) == 6
        assert Z.neg(2) == -2
        assert Z.sub(2, 3) == -1

    def test_is_zero(self):
        assert Z.is_zero(0)
        assert not Z.is_zero(1)
        assert not Z.is_zero(-1)

    def test_sum_product(self):
        assert Z.sum([1, 2, 3]) == 6
        assert Z.product([2, 3, 4]) == 24
        assert Z.sum([]) == 0
        assert Z.product([]) == 1

    def test_has_negation(self):
        assert Z.has_negation

    def test_axioms_on_samples(self):
        check_ring_axioms(Z, [-3, -1, 0, 1, 2, 7])

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=4))
    def test_axioms_property(self, samples):
        check_ring_axioms(Z, samples)

    def test_equality_and_hash(self):
        assert Z == IntegerRing()
        assert hash(Z) == hash(IntegerRing())


class TestFloatRing:
    def test_tolerance_zero(self):
        assert R.is_zero(1e-15)
        assert not R.is_zero(1e-3)

    def test_residual_cancellation(self):
        value = R.add(0.1, R.add(0.2, R.neg(0.30000000000000004)))
        assert R.is_zero(value)

    def test_axioms_on_samples(self):
        check_ring_axioms(R, [0.0, 1.0, -2.5, 4.0])

    def test_custom_tolerance_identity(self):
        loose = FloatRing(tolerance=0.1)
        assert loose.is_zero(0.05)
        assert loose != R


class TestBooleanSemiring:
    def test_operations(self):
        assert B.add(True, False) is True
        assert B.add(False, False) is False
        assert B.mul(True, True) is True
        assert B.mul(True, False) is False

    def test_no_negation(self):
        assert not B.has_negation
        assert not hasattr(B, "neg") or not isinstance(B, Ring)

    def test_axioms(self):
        check_ring_axioms(B, [True, False])


class TestMinPlus:
    def test_identities(self):
        assert MIN_PLUS.zero == math.inf
        assert MIN_PLUS.one == 0.0

    def test_operations(self):
        assert MIN_PLUS.add(3.0, 5.0) == 3.0
        assert MIN_PLUS.mul(3.0, 5.0) == 8.0

    def test_axioms(self):
        check_ring_axioms(MIN_PLUS, [0.0, 1.0, 5.0, math.inf])


class TestProductRing:
    def test_componentwise(self):
        ring = ProductRing(Z, Z)
        assert ring.zero == (0, 0)
        assert ring.one == (1, 1)
        assert ring.add((1, 2), (3, 4)) == (4, 6)
        assert ring.mul((1, 2), (3, 4)) == (3, 8)
        assert ring.neg((1, -2)) == (-1, 2)

    def test_is_zero_requires_all(self):
        ring = ProductRing(Z, Z)
        assert ring.is_zero((0, 0))
        assert not ring.is_zero((0, 1))

    def test_count_sum_composite(self):
        # The classic (COUNT, SUM) payload in one pass.
        ring = ProductRing(Z, Z)
        entries = [(1, 10), (1, 32)]
        total = ring.zero
        for e in entries:
            total = ring.add(total, e)
        assert total == (2, 42)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ProductRing()

    def test_rejects_semiring_factor(self):
        with pytest.raises(TypeError):
            ProductRing(Z, BooleanSemiring())

    def test_axioms(self):
        ring = ProductRing(Z, Z)
        check_ring_axioms(ring, [(0, 0), (1, 2), (-1, 3)])


class TestCovarianceRing:
    def setup_method(self):
        self.ring = CovarianceRing()

    def test_identities(self):
        assert self.ring.is_zero(self.ring.zero)
        one = self.ring.one
        assert one.count == 1 and not one.sums and not one.quads

    def test_lift_single_value(self):
        lifted = moment_lifting("X")(3.0)
        assert lifted.count == 1
        assert lifted.sum_of("X") == 3.0
        assert lifted.quad_of("X", "X") == 9.0

    def test_mul_disjoint_variables(self):
        x = moment_lifting("X")(2.0)
        y = moment_lifting("Y")(5.0)
        product = self.ring.mul(x, y)
        assert product.count == 1
        assert product.sum_of("X") == 2.0
        assert product.sum_of("Y") == 5.0
        assert product.quad_of("X", "Y") == 10.0
        assert product.quad_of("X", "X") == 4.0

    def test_aggregation_matches_direct_moments(self):
        # Aggregate three (x, y) points through the ring and compare with
        # direct computation of count/sums/quads.
        points = [(1.0, 2.0), (3.0, 5.0), (-2.0, 4.0)]
        total = self.ring.zero
        for x, y in points:
            term = self.ring.mul(moment_lifting("X")(x), moment_lifting("Y")(y))
            total = self.ring.add(total, term)
        assert total.count == 3
        assert total.sum_of("X") == sum(p[0] for p in points)
        assert total.sum_of("Y") == sum(p[1] for p in points)
        assert total.quad_of("X", "Y") == sum(p[0] * p[1] for p in points)
        assert total.quad_of("X", "X") == sum(p[0] ** 2 for p in points)

    def test_covariance_value(self):
        points = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
        total = self.ring.zero
        for x, y in points:
            term = self.ring.mul(moment_lifting("X")(x), moment_lifting("Y")(y))
            total = self.ring.add(total, term)
        assert total.covariance("X", "Y") == pytest.approx(2.0 / 3.0)

    def test_neg_cancels(self):
        x = self.ring.mul(moment_lifting("X")(2.0), moment_lifting("Y")(7.0))
        assert self.ring.is_zero(self.ring.add(x, self.ring.neg(x)))

    @given(
        st.lists(
            st.tuples(
                st.integers(-8, 8).map(float),
                st.integers(-8, 8).map(float),
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_mul_commutative(self, values):
        # Integer-valued floats keep the arithmetic exact; with arbitrary
        # floats the two accumulation orders differ by rounding only.
        elements = [
            CovarianceRing().mul(moment_lifting("X")(x), moment_lifting("Y")(y))
            for x, y in values
        ]
        ring = CovarianceRing()
        a = elements[0]
        for b in elements[1:]:
            assert ring.mul(a, b) == ring.mul(b, a)

    def test_distributivity(self):
        ring = self.ring
        a = moment_lifting("X")(2.0)
        b = moment_lifting("Y")(3.0)
        c = moment_lifting("Y")(4.0)
        assert ring.mul(a, ring.add(b, c)) == ring.add(
            ring.mul(a, b), ring.mul(a, c)
        )

    def test_associativity_three_variables(self):
        ring = self.ring
        a = moment_lifting("X")(2.0)
        b = moment_lifting("Y")(3.0)
        c = moment_lifting("Z")(4.0)
        left = ring.mul(ring.mul(a, b), c)
        right = ring.mul(a, ring.mul(b, c))
        assert left == right


class TestLiftingMap:
    def test_default_is_count(self):
        lifting = LiftingMap(Z)
        assert lifting.for_variable("X")(42) == 1
        assert lifting.is_trivial("X")

    def test_identity_lifting(self):
        lifting = LiftingMap(Z, {"X": identity_lifting(Z)})
        assert lifting.for_variable("X")(42) == 42
        assert lifting.for_variable("Y")(42) == 1
        assert not lifting.is_trivial("X")
        assert lifting.is_trivial("Y")

    def test_with_variable_copies(self):
        base = LiftingMap(Z)
        extended = base.with_variable("X", identity_lifting(Z))
        assert base.is_trivial("X")
        assert not extended.is_trivial("X")

    def test_count_lifting_uses_ring_one(self):
        lift = count_lifting(MIN_PLUS)
        assert lift("anything") == 0.0  # min-plus one
