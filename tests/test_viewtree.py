"""View-tree engine: construction, maintenance, enumeration, and the
complexity contract of Theorem 4.1 (asserted via operation counts)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Database, Update, counting
from repro.naive import evaluate, evaluate_scalar
from repro.query import canonical_order, parse_query, search_order
from repro.rings import Z, LiftingMap, identity_lifting
from repro.viewtree import ViewTreeEngine

FIG3 = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")


def seeded_db(schemas, rng, rows=120, domain=12):
    db = Database()
    for name, schema in schemas:
        rel = db.create(name, schema)
        for _ in range(rows):
            rel.insert(*(rng.randrange(domain) for _ in schema))
    return db


class TestConstruction:
    def test_leaves_are_copies(self, rng):
        db = seeded_db([("R", ("Y", "X")), ("S", ("Y", "Z"))], rng)
        engine = ViewTreeEngine(FIG3, db)
        # Mutating the base relation behind the engine's back leaves the
        # tree stale (leaves are copies): pick a Y value that joins.
        some_y = next(iter(db["S"].keys()))[0]
        db["R"].insert(some_y, 999)
        assert engine.output_relation() != evaluate(FIG3, db)

    def test_guard_only_when_multiple_sources(self, rng):
        db = seeded_db([("R", ("Y", "X")), ("S", ("Y", "Z"))], rng)
        engine = ViewTreeEngine(FIG3, db)
        root = engine.roots[0]
        assert root.guard is not None  # two child views meet at Y
        for child in root.children:
            assert child.guard is None  # single anchored leaf

    def test_describe_renders(self, rng):
        db = seeded_db([("R", ("Y", "X")), ("S", ("Y", "Z"))], rng)
        text = ViewTreeEngine(FIG3, db).describe()
        assert "V_Y" in text and "leaf R(Y, X)" in text

    def test_total_view_size_positive(self, rng):
        db = seeded_db([("R", ("Y", "X")), ("S", ("Y", "Z"))], rng)
        assert ViewTreeEngine(FIG3, db).total_view_size() > 0

    def test_arity_mismatch_raises(self):
        db = Database()
        db.create("R", ("A",))
        db.create("S", ("Y", "Z"))
        with pytest.raises(ValueError):
            ViewTreeEngine(FIG3, db)

    def test_order_for_other_query_rejected(self, rng):
        db = seeded_db([("R", ("Y", "X")), ("S", ("Y", "Z"))], rng)
        other = parse_query("P(A) = U(A, B) * V(B)")
        order = search_order(other)
        with pytest.raises(ValueError):
            ViewTreeEngine(FIG3, db, order)


class TestMaintenance:
    QUERIES = [
        ("Q(Y, X, Z) = R(Y, X) * S(Y, Z)", [("R", ("Y", "X")), ("S", ("Y", "Z"))]),
        ("Q(A, B, C) = R(A, B) * S(B, C)", [("R", ("A", "B")), ("S", ("B", "C"))]),
        (
            "Q(A) = R(A, B) * S(B, C) * T(C, D)",
            [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "D"))],
        ),
        (
            "Q() = R(A,B) * S(B,C) * T(C,A)",
            [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "A"))],
        ),
    ]

    @pytest.mark.parametrize("text,schemas", QUERIES)
    def test_differential_against_naive(self, text, schemas, rng):
        from tests.conftest import valid_stream

        query = parse_query(text)
        db = seeded_db(schemas, rng, rows=80, domain=8)
        order = None
        if not query.head:
            order = search_order(query, prefer_free_top=False)
        engine = ViewTreeEngine(query, db, order)
        stream = valid_stream(
            rng, {name: len(schema) for name, schema in schemas}, 300
        )
        for step, update in enumerate(stream):
            engine.apply(update)
            if step % 75 == 74:
                if query.head:
                    assert engine.output_relation() == evaluate(query, db)
                else:
                    assert engine.scalar() == evaluate_scalar(query, db)

    def test_update_base_false_leaves_database(self, rng):
        db = seeded_db([("R", ("Y", "X")), ("S", ("Y", "Z"))], rng)
        engine = ViewTreeEngine(FIG3, db)
        size = len(db["R"])
        engine.apply(Update("R", (50, 51), 1), update_base=False)
        assert len(db["R"]) == size

    def test_self_join_within_one_tree(self, rng):
        from tests.conftest import valid_stream

        q = parse_query("Q(A, B, C) = E(A, B) * E(B, C)")
        db = Database()
        db.create("E", ("A", "B"))
        order = search_order(q, require_free_top=True)
        engine = ViewTreeEngine(q, db, order)
        for update in valid_stream(rng, {"E": 2}, 200, domain=6):
            engine.apply(update)
        assert engine.output_relation() == evaluate(q, db)

    def test_lifted_aggregate_maintenance(self, rng):
        q = parse_query("Q(A) = R(A, V) * S(A)")
        db = Database()
        db.create("R", ("A", "V"))
        db.create("S", ("A",))
        lifting = LiftingMap(Z, {"V": identity_lifting(Z)})
        engine = ViewTreeEngine(q, db, lifting=lifting)
        for _ in range(120):
            if rng.random() < 0.7:
                engine.apply(Update("R", (rng.randrange(5), rng.randrange(1, 9)), 1))
            else:
                engine.apply(Update("S", (rng.randrange(5),), rng.choice([1, -1])))
        assert engine.output_relation() == evaluate(q, db, lifting)

    @given(st.integers(0, 100_000))
    @settings(max_examples=25, deadline=None)
    def test_insert_then_inverse_restores_views(self, seed):
        local = random.Random(seed)
        db = Database()
        db.create("R", ("Y", "X"))
        db.create("S", ("Y", "Z"))
        engine = ViewTreeEngine(FIG3, db)
        updates = [
            Update(
                local.choice(["R", "S"]),
                (local.randrange(4), local.randrange(4)),
                1,
            )
            for _ in range(20)
        ]
        for update in updates:
            engine.apply(update)
        for update in reversed(updates):
            engine.apply(Update(update.relation, update.key, -1))
        assert len(engine.output_relation()) == 0
        for root in engine.roots:
            for node in root.walk():
                assert len(node.view) == 0


class TestEnumeration:
    def test_prebound_lookup(self, rng):
        db = seeded_db([("R", ("Y", "X")), ("S", ("Y", "Z"))], rng)
        engine = ViewTreeEngine(FIG3, db)
        full = dict(engine.enumerate())
        some_y = next(iter(full))[0]
        filtered = dict(engine.enumerate(prebound={"Y": some_y}))
        assert filtered == {k: v for k, v in full.items() if k[0] == some_y}

    def test_prebound_missing_value(self, rng):
        db = seeded_db([("R", ("Y", "X")), ("S", ("Y", "Z"))], rng)
        engine = ViewTreeEngine(FIG3, db)
        assert dict(engine.enumerate(prebound={"Y": "nope"})) == {}

    def test_non_free_top_enumeration_raises(self, rng):
        q = FIG3.with_head(("X",))
        db = seeded_db([("R", ("Y", "X")), ("S", ("Y", "Z"))], rng)
        engine = ViewTreeEngine(q, db, canonical_order(q))
        with pytest.raises(ValueError):
            list(engine.enumerate())

    def test_boolean_enumerate_yields_scalar(self, rng):
        q = parse_query("Q() = R(A) * S(A)")
        db = Database()
        db.create("R", ("A",)).insert(1)
        db.create("S", ("A",)).insert(1)
        engine = ViewTreeEngine(q, db)
        assert list(engine.enumerate()) == [((), 1)]

    def test_empty_output(self):
        db = Database()
        db.create("R", ("Y", "X"))
        db.create("S", ("Y", "Z"))
        engine = ViewTreeEngine(FIG3, db)
        assert list(engine.enumerate()) == []


class TestTheorem41Complexity:
    """Operation-count checks for the q-hierarchical upper bounds."""

    def _engine_of_size(self, n, seed=0):
        local = random.Random(seed)
        db = Database()
        r = db.create("R", ("Y", "X"))
        s = db.create("S", ("Y", "Z"))
        for _ in range(n):
            r.insert(local.randrange(n), local.randrange(n))
            s.insert(local.randrange(n), local.randrange(n))
        return ViewTreeEngine(FIG3, db), local

    def test_single_tuple_update_is_constant(self):
        """Update cost does not grow with N for q-hierarchical queries."""
        costs = []
        for n in (100, 400, 1600):
            engine, local = self._engine_of_size(n)
            with counting() as ops:
                for _ in range(20):
                    engine.apply(
                        Update("R", (local.randrange(n), local.randrange(n)), 1)
                    )
            costs.append(ops.total() / 20)
        assert costs[-1] <= costs[0] * 2 + 10  # flat, modulo noise

    def test_enumeration_delay_is_constant(self):
        """Total enumeration ops scale linearly with the output size."""
        ratios = []
        for n in (200, 800):
            engine, _ = self._engine_of_size(n)
            out_size = sum(1 for _ in engine.enumerate())
            with counting() as ops:
                for _ in engine.enumerate():
                    pass
            ratios.append(ops.total() / max(out_size, 1))
        assert ratios[-1] <= ratios[0] * 2 + 10

    def test_non_q_hierarchical_updates_grow(self):
        """For Q(A) = R(A,B) * S(B) under a free-top order, S-updates on a
        heavy B value must touch O(N) entries — the flip side of the
        dichotomy."""
        q = parse_query("Q(A) = R(A, B) * S(B)")
        costs = []
        for n in (100, 400):
            db = Database()
            r = db.create("R", ("A", "B"))
            s = db.create("S", ("B",))
            for a in range(n):
                r.insert(a, 0)  # B = 0 is heavy
            engine = ViewTreeEngine(q, db, search_order(q, require_free_top=True))
            with counting() as ops:
                engine.apply(Update("S", (0,), 1))
            costs.append(ops.total())
        assert costs[1] > costs[0] * 2  # grows linearly with N
