"""Delta queries: the symbolic rules (1)-(3) and the first-order engine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Database, Relation, Update, permuted
from repro.delta import Aggregate, DeltaQueryEngine, Join, Leaf, Union, from_query
from repro.naive import evaluate, evaluate_scalar
from repro.query import parse_query
from tests.conftest import fig2_database

TRIANGLE = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")


class TestSymbolicDeltaRules:
    def test_rule_2_join(self):
        expr = Join(Leaf("R", ("A", "B")), Leaf("S", ("B", "C")))
        delta = expr.delta("R")
        assert str(delta) == "(dR(A, B) . S(B, C))"

    def test_rule_2_both_sides(self):
        expr = Join(Leaf("E", ("A", "B")), Leaf("E", ("B", "C")))
        delta = expr.delta("E")
        text = str(delta)
        # All three terms of rule (2): dE.E, E.dE, dE.dE.
        assert text.count("dE") == 4
        assert "(dE(A, B) . dE(B, C))" in text

    def test_rule_1_union(self):
        expr = Union(Leaf("R", ("A",)), Leaf("S", ("A",)))
        assert str(expr.delta("R")) == "dR(A)"
        assert str(expr.delta("S")) == "dS(A)"
        both = Union(Leaf("R", ("A",)), Leaf("R", ("A",)))
        assert "(+)" in str(both.delta("R"))

    def test_rule_3_aggregate(self):
        expr = Aggregate("B", Leaf("R", ("A", "B")))
        assert str(expr.delta("R")) == "SUM_B dR(A, B)"

    def test_empty_delta_pruned(self):
        expr = Join(Leaf("R", ("A", "B")), Leaf("S", ("B", "C")))
        assert expr.delta("T") is None

    def test_example_3_1_derivation(self):
        """The derivation in Example 3.1: the delta of the triangle query
        w.r.t. R is SUM dR(A,B) . S(B,C) . T(C,A) — one join term only."""
        expr = from_query(TRIANGLE)
        delta = expr.delta("R")
        text = str(delta)
        assert "dR(A, B)" in text
        assert "dS" not in text and "dT" not in text
        assert "(+)" not in text  # single term: S and T are unchanged

    def test_symbolic_evaluation_matches_example(self):
        db = fig2_database()
        expr = from_query(TRIANGLE)
        assert expr.evaluate(db).get(()) == 9
        delta_expr = expr.delta("R")
        d_r = Relation("R", ("A", "B"), data={("a2", "b1"): -2})
        delta_value = delta_expr.evaluate(db, deltas={"R": d_r})
        assert delta_value.get(()) == -4

    def test_union_schema_mismatch(self):
        expr = Union(Leaf("R", ("A",)), Leaf("S", ("B",)))
        with pytest.raises(ValueError):
            expr.schema()

    def test_leaf_requires_delta_binding(self):
        leaf = Leaf("R", ("A",), is_delta=True)
        db = Database()
        db.create("R", ("A",))
        with pytest.raises(ValueError):
            leaf.evaluate(db)

    def test_operator_sugar(self):
        expr = Leaf("R", ("A",)) * Leaf("S", ("A",)) + (
            Leaf("R", ("A",)) * Leaf("T", ("A",))
        )
        assert isinstance(expr, Union)


class TestDeltaQueryEngine:
    def test_example_3_1_end_to_end(self):
        db = fig2_database()
        engine = DeltaQueryEngine(TRIANGLE, db)
        assert engine.scalar() == 9
        engine.update(Update("R", ("a2", "b1"), -2))
        assert engine.scalar() == 5
        assert db["R"].get(("a2", "b1")) == 1  # 3 - 2, as in the paper

    def test_eager_tracks_naive(self, rng):
        db = Database()
        for name, schema in [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "A"))]:
            db.create(name, schema)
        engine = DeltaQueryEngine(TRIANGLE, db)
        for _ in range(150):
            rel = rng.choice(["R", "S", "T"])
            engine.update(
                Update(rel, (rng.randrange(6), rng.randrange(6)), rng.choice([1, 1, -1]))
            )
        assert engine.scalar() == evaluate_scalar(TRIANGLE, db)

    def test_lazy_buffers_until_enumeration(self, rng):
        db = Database()
        for name, schema in [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "A"))]:
            db.create(name, schema)
        engine = DeltaQueryEngine(TRIANGLE, db, eager=False)
        engine.update(Update("R", (1, 1), 1))
        assert len(db["R"]) == 0  # not yet applied
        engine.refresh()
        assert db["R"].get((1, 1)) == 1

    def test_lazy_matches_eager(self, rng):
        updates = [
            Update(
                rng.choice(["R", "S", "T"]),
                (rng.randrange(5), rng.randrange(5)),
                rng.choice([1, 1, -1]),
            )
            for _ in range(120)
        ]

        def run(eager):
            db = Database()
            for name, schema in [
                ("R", ("A", "B")),
                ("S", ("B", "C")),
                ("T", ("C", "A")),
            ]:
                db.create(name, schema)
            engine = DeltaQueryEngine(TRIANGLE, db, eager=eager)
            for i, update in enumerate(updates):
                engine.update(update)
                if i % 40 == 39:
                    engine.refresh()
            return engine.scalar()

        assert run(True) == run(False)

    def test_non_boolean_output(self, rng):
        q = parse_query("Q(A) = R(A, B) * S(B)")
        db = Database()
        db.create("R", ("A", "B"))
        db.create("S", ("B",))
        engine = DeltaQueryEngine(q, db)
        for _ in range(100):
            if rng.random() < 0.5:
                engine.update(Update("R", (rng.randrange(6), rng.randrange(6)), 1))
            else:
                engine.update(Update("S", (rng.randrange(6),), rng.choice([1, -1])))
        assert engine.result() == evaluate(q, db)

    def test_self_join_deltas(self, rng):
        q = parse_query("Q(A, C) = E(A, B) * E(B, C)")
        db = Database()
        db.create("E", ("A", "B"))
        engine = DeltaQueryEngine(q, db)
        for _ in range(80):
            engine.update(
                Update("E", (rng.randrange(5), rng.randrange(5)), rng.choice([1, 1, -1]))
            )
        assert engine.result() == evaluate(q, db)

    def test_self_join_lazy_drains_tuple_by_tuple(self, rng):
        q = parse_query("Q(A, C) = E(A, B) * E(B, C)")
        db = Database()
        db.create("E", ("A", "B"))
        engine = DeltaQueryEngine(q, db, eager=False)
        for _ in range(40):
            engine.update(Update("E", (rng.randrange(4), rng.randrange(4)), 1))
        assert engine.result() == evaluate(q, db)

    def test_update_to_unknown_relation(self):
        db = fig2_database()
        db.create("Other", ("A",))
        engine = DeltaQueryEngine(TRIANGLE, db)
        engine.update(Update("Other", (1,), 1))  # no-op for the output
        assert engine.scalar() == 9

    def test_scalar_requires_boolean(self):
        db = fig2_database()
        q = parse_query("Q(A) = R(A, B) * S(B, C) * T(C, A)")
        engine = DeltaQueryEngine(q, db)
        with pytest.raises(ValueError):
            engine.scalar()

    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_batch_order_invariance(self, seed):
        """Commutativity (Section 2): permuting a batch leaves the
        maintained output unchanged."""
        import random

        local = random.Random(seed)
        batch = [
            Update(
                local.choice(["R", "S", "T"]),
                (local.randrange(4), local.randrange(4)),
                local.choice([1, -1]),
            )
            for _ in range(30)
        ]

        def run(updates):
            db = fig2_database()
            engine = DeltaQueryEngine(TRIANGLE, db)
            for update in updates:
                engine.update(update)
            return engine.scalar()

        assert run(batch) == run(permuted(batch, seed))
