"""Query AST, parser, hypergraph, and syntactic-class tests.

The examples come straight from the paper: Example 4.3's (non-)
hierarchical queries, the triangle query, Example 4.5's pair, and the
class inclusions stated in Section 4.1.
"""

import pytest

from repro.query import (
    Atom,
    Query,
    QueryParseError,
    build_join_tree,
    gyo_reduce,
    is_alpha_acyclic,
    is_free_connex,
    is_free_dominant,
    is_hierarchical,
    is_input_dominant,
    is_q_hierarchical,
    parse_query,
    query,
    witness_non_hierarchical,
)

TRIANGLE = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
PATH2 = parse_query("Q(A,B,C) = R(A,B) * S(B,C)")
PATH3 = parse_query("Q(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)")
FIG3 = parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)")
EX43_NON_HIER = parse_query("Q() = R(X) * S(X,Y) * T(Y)")
EX43_HIER_NOT_Q = parse_query("Q(X) = R(X,Y) * S(Y)")


class TestParser:
    def test_simple(self):
        q = parse_query("Q(A, B) = R(A, X) * S(X, B)")
        assert q.name == "Q"
        assert q.head == ("A", "B")
        assert [a.relation for a in q.atoms] == ["R", "S"]

    def test_boolean(self):
        q = parse_query("Q() = R(A)")
        assert q.is_boolean()
        assert q.head == ()

    def test_comma_separator(self):
        q = parse_query("Q(A) = R(A, B), S(B)")
        assert len(q.atoms) == 2

    def test_cqap_syntax(self):
        q = parse_query("Q(C | A, B) = E(A,B) * E(B,C)")
        assert q.input_variables == ("A", "B")
        assert q.output_variables == ("C",)
        assert set(q.head) == {"A", "B", "C"}

    def test_cqap_no_outputs(self):
        q = parse_query("Q(. | A, B) = E(A,B)")
        assert q.output_variables == ()
        assert q.input_variables == ("A", "B")

    def test_static_adornment(self):
        q = parse_query("Q(A, B) = R(A) * S@s(A, B) * T(B)")
        statics = [a.relation for a in q.static_atoms]
        assert statics == ["S"]

    def test_head_var_not_in_body(self):
        with pytest.raises(ValueError):
            parse_query("Q(Z) = R(A)")

    def test_garbage_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("this is not a query")
        with pytest.raises(QueryParseError):
            parse_query("Q(A) = R(A) nonsense(")

    def test_roundtrip_str(self):
        q = parse_query("Q(C | A, B) = E(A, B) * E(B, C)")
        text = str(q)
        assert "C | A, B" in text and "E(A, B)" in text


class TestQueryStructure:
    def test_variables_and_classes(self):
        assert TRIANGLE.variables() == {"A", "B", "C"}
        assert TRIANGLE.bound_variables == {"A", "B", "C"}
        assert PATH2.free_variables == {"A", "B", "C"}

    def test_atoms_of(self):
        atoms_b = TRIANGLE.atoms_of("B")
        assert {a.relation for a in atoms_b} == {"R", "S"}

    def test_self_join_detection(self):
        q = parse_query("Q() = E(A,B) * E(B,C)")
        assert not q.is_self_join_free()
        assert TRIANGLE.is_self_join_free()

    def test_atom_for_relation(self):
        atom = TRIANGLE.atom_for_relation("S")
        assert atom.variables == ("B", "C")
        with pytest.raises(KeyError):
            TRIANGLE.atom_for_relation("Z")

    def test_connected_components(self):
        q = parse_query("Q(A, C) = R(A, B) * S(C) * T(C, D)")
        components = q.connected_components()
        assert len(components) == 2
        sizes = sorted(len(c.atoms) for c in components)
        assert sizes == [1, 2]
        # Heads are split component-wise.
        heads = sorted(c.head for c in components)
        assert heads == [("A",), ("C",)]

    def test_boolean_and_full_versions(self):
        boolean = PATH2.boolean_version()
        assert boolean.head == ()
        full = TRIANGLE.full_version()
        assert set(full.head) == {"A", "B", "C"}

    def test_duplicate_head_rejected(self):
        with pytest.raises(ValueError):
            Query("Q", ("A", "A"), (Atom("R", ("A",)),))

    def test_input_must_be_free(self):
        with pytest.raises(ValueError):
            Query("Q", ("A",), (Atom("R", ("A", "B")),), input_variables=("B",))

    def test_query_helper_static_suffix(self):
        q = query("Q", ["A"], ("R@s", "A"), ("S", "A"))
        assert q.atoms[0].static and not q.atoms[1].static


class TestHierarchical:
    def test_example_4_3_non_hierarchical(self):
        assert not is_hierarchical(EX43_NON_HIER)
        witness = witness_non_hierarchical(EX43_NON_HIER)
        assert witness == ("X", "Y")

    def test_example_4_3_dropping_any_atom_makes_hierarchical(self):
        # "The query becomes hierarchical if we drop any of the atoms."
        atoms = EX43_NON_HIER.atoms
        for drop in range(3):
            remaining = tuple(a for i, a in enumerate(atoms) if i != drop)
            q = Query("Q", (), remaining)
            assert is_hierarchical(q), f"dropping atom {drop}"

    def test_example_4_3_hierarchical_not_q(self):
        assert is_hierarchical(EX43_HIER_NOT_Q)
        assert not is_q_hierarchical(EX43_HIER_NOT_Q)

    def test_fig3_query_is_q_hierarchical(self):
        assert is_q_hierarchical(FIG3)

    def test_path2_q_hierarchical_all_free(self):
        # Q2 of Example 4.5.
        assert is_q_hierarchical(PATH2)

    def test_path3_not_hierarchical(self):
        assert not is_hierarchical(PATH3)

    def test_triangle_hierarchy(self):
        assert not is_hierarchical(TRIANGLE)

    def test_boolean_version_preserves_hierarchy(self):
        # Hierarchicality ignores the head; q-hierarchicality does not.
        assert is_hierarchical(FIG3.boolean_version())
        assert is_q_hierarchical(FIG3.boolean_version())

    def test_projection_can_break_q(self):
        # Keeping only X free in R(Y,X)*S(Y,Z): Y dominates X but is bound.
        q = FIG3.with_head(("X",))
        assert is_hierarchical(q)
        assert not is_q_hierarchical(q)

    def test_free_dominant_equals_q_for_no_inputs(self):
        # Footnote 4: the properties q and free-dominant coincide.
        for q in [FIG3, EX43_HIER_NOT_Q, PATH2, FIG3.with_head(("X",))]:
            assert (is_hierarchical(q) and is_free_dominant(q)) == is_q_hierarchical(q)

    def test_input_dominant(self):
        q = parse_query("Q(C | A, B) = E1(A,B) * E2(B,C) * E3(C,A)")
        assert not is_input_dominant(q) or is_input_dominant(q)  # smoke
        simple = parse_query("Q(A | B) = S(A,B) * T(B)")
        assert is_input_dominant(simple)


class TestHypergraph:
    def test_gyo_empty_for_acyclic(self):
        assert gyo_reduce([frozenset("AB"), frozenset("BC")]) == []

    def test_gyo_residue_for_triangle(self):
        residue = gyo_reduce(
            [frozenset("AB"), frozenset("BC"), frozenset("CA")]
        )
        assert residue  # triangle is cyclic

    def test_alpha_acyclic(self):
        assert is_alpha_acyclic(PATH3)
        assert not is_alpha_acyclic(TRIANGLE)

    def test_q_hierarchical_implies_free_connex(self):
        # Section 4.1: q-hierarchical is a strict subclass of free-connex.
        for q in [FIG3, PATH2]:
            assert is_q_hierarchical(q)
            assert is_free_connex(q)

    def test_free_connex_strictness(self):
        # The full path-3 join is free-connex but not q-hierarchical.
        full_path = PATH3
        assert is_free_connex(full_path)
        assert not is_q_hierarchical(full_path)

    def test_not_free_connex(self):
        # Boolean path is acyclic; projecting to the endpoints breaks
        # free-connexity.
        q = parse_query("Q(A, C) = R(A, B) * S(B, C)")
        assert is_alpha_acyclic(q)
        assert not is_free_connex(q)

    def test_join_tree_running_intersection(self):
        forest = build_join_tree(PATH3)
        assert forest is not None
        atoms = [n.atom for root in forest for n in root.walk()]
        assert len(atoms) == 3
        # Running intersection: for each variable the atoms containing it
        # form a connected subtree.  Spot-check by parenthood relations.
        for root in forest:
            for node in root.walk():
                for child in node.children:
                    shared = set(node.atom.variables) & set(child.atom.variables)
                    assert shared, "parent and child must share variables"

    def test_join_tree_none_for_cyclic(self):
        assert build_join_tree(TRIANGLE) is None

    def test_join_tree_disconnected(self):
        q = parse_query("Q() = R(A) * S(B)")
        forest = build_join_tree(q)
        assert forest is not None and len(forest) == 2
