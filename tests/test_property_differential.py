"""Property-based differential testing: random queries, random valid
update streams, every maintenance engine against the naive oracle.

This is the repository's strongest correctness net: hypothesis generates
query *shapes* (hierarchical forests for the view-tree engine, acyclic
paths/stars for the others) together with update streams, and each engine
must agree with full recomputation at every checkpoint.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.data import Database, Update
from repro.delta import DeltaQueryEngine
from repro.naive import evaluate
from repro.query import Atom, Query, canonical_order, is_q_hierarchical
from repro.shard import ShardedEngine
from repro.viewtree import ViewTreeEngine
from tests.conftest import valid_stream


@st.composite
def hierarchical_query(draw):
    """A random hierarchical query built from a random variable forest.

    Construction guarantees hierarchy: build a tree of variables, attach
    each atom to a root-to-node path (the atom's schema is that path),
    then pick free variables as a *prefix-closed* subset so the query is
    also q-hierarchical.
    """
    n_vars = draw(st.integers(2, 5))
    variables = [f"V{i}" for i in range(n_vars)]
    parents = [None] + [
        draw(st.integers(0, i - 1)) for i in range(1, n_vars)
    ]

    def path_to_root(i):
        path = [variables[i]]
        while parents[i] is not None:
            i = parents[i]
            path.append(variables[i])
        return tuple(reversed(path))

    n_atoms = draw(st.integers(1, 4))
    atoms = []
    covered: set[str] = set()
    for index in range(n_atoms):
        anchor = draw(st.integers(0, n_vars - 1))
        schema = path_to_root(anchor)
        atoms.append(Atom(f"R{index}", schema))
        covered.update(schema)
    # Drop variables no atom covers.
    kept = [v for v in variables if v in covered]

    # Free prefix: a variable is free only if its parent is free.
    free: list[str] = []
    for i, var in enumerate(variables):
        if var not in covered:
            continue
        parent = parents[i]
        parent_free = parent is None or variables[parent] in free
        if parent_free and draw(st.booleans()):
            free.append(var)
    return Query("Qh", tuple(free), tuple(atoms))


def _run_stream(query, engine_factory, stream_spec):
    """Apply the stream to both the engine and a fresh db; compare."""
    db = Database()
    arities = {}
    for atom in query.atoms:
        if atom.relation not in db:
            db.create(atom.relation, atom.variables)
        arities[atom.relation] = len(atom.variables)
    engine = engine_factory(db)

    live: dict[tuple, int] = {}
    rng = random.Random(stream_spec["seed"])
    for _ in range(stream_spec["length"]):
        name = rng.choice(list(arities))
        if live and rng.random() < 0.3:
            relation, key = rng.choice(list(live))
            update = Update(relation, key, -1)
            live[(relation, key)] -= 1
            if not live[(relation, key)]:
                del live[(relation, key)]
        else:
            key = tuple(rng.randrange(4) for _ in range(arities[name]))
            update = Update(name, key, 1)
            live[(name, key)] = live.get((name, key), 0) + 1
        if isinstance(engine, DeltaQueryEngine):
            engine.update(update)
        else:
            engine.apply(update)
    return engine, db


class TestViewTreeOnRandomHierarchicalQueries:
    @given(hierarchical_query(), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_matches_naive(self, query, seed):
        assert is_q_hierarchical(query)  # by construction
        engine, db = _run_stream(
            query,
            lambda db: ViewTreeEngine(query, db),
            {"seed": seed, "length": 40},
        )
        if query.head:
            got = engine.output_relation()
            assert got == evaluate(query, db)
        else:
            assert engine.scalar() == evaluate(query, db).get(())

    @given(hierarchical_query(), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_canonical_order_is_free_top(self, query, seed):
        order = canonical_order(query)
        assert order.is_free_top()


class TestDeltaEngineOnRandomHierarchicalQueries:
    @given(hierarchical_query(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_naive(self, query, seed):
        engine, db = _run_stream(
            query,
            lambda db: DeltaQueryEngine(query, db),
            {"seed": seed, "length": 30},
        )
        assert engine.result() == evaluate(query, db)


class TestShardInvariance:
    """Sharded maintenance must be bit-identical to the plain engine:
    same output relation, same enumeration contents, any shard count."""

    @given(hierarchical_query(), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_shard_count_invariance(self, query, seed):
        spec = {"seed": seed, "length": 40}
        plain, db0 = _run_stream(
            query, lambda db: ViewTreeEngine(query, db), spec
        )
        oracle = evaluate(query, db0)
        for shards in (1, 2, 4):
            engine, _db = _run_stream(
                query,
                lambda db: ShardedEngine(
                    query, db, shards=shards, executor="serial"
                ),
                spec,
            )
            if query.head:
                assert dict(engine.enumerate()) == dict(plain.enumerate())
                assert engine.output_relation() == oracle
            else:
                assert engine.scalar() == plain.scalar()
                assert engine.scalar() == oracle.get(())

    @given(hierarchical_query(), st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_batch_application_invariance(self, query, seed):
        arities = {a.relation: len(a.variables) for a in query.atoms}
        batch = valid_stream(random.Random(seed), arities, 60, domain=4)

        def build(shards):
            db = Database()
            for atom in query.atoms:
                if atom.relation not in db:
                    db.create(atom.relation, atom.variables)
            if shards == 0:
                engine = ViewTreeEngine(query, db)
            else:
                engine = ShardedEngine(
                    query, db, shards=shards, executor="serial"
                )
            engine.apply_batch(list(batch))
            return engine, db

        plain, ref_db = build(0)
        oracle = evaluate(query, ref_db)
        for shards in (1, 2, 4):
            engine, _db = build(shards)
            if query.head:
                assert dict(engine.enumerate()) == dict(plain.enumerate())
                assert engine.output_relation() == oracle
            else:
                assert engine.scalar() == plain.scalar()


@st.composite
def acyclic_query(draw):
    """Random path or star join with a random free-variable choice."""
    shape = draw(st.sampled_from(["path", "star"]))
    n_atoms = draw(st.integers(2, 4))
    atoms = []
    if shape == "path":
        for i in range(n_atoms):
            atoms.append(Atom(f"R{i}", (f"V{i}", f"V{i+1}")))
        variables = [f"V{i}" for i in range(n_atoms + 1)]
    else:
        for i in range(n_atoms):
            atoms.append(Atom(f"R{i}", ("V0", f"V{i+1}")))
        variables = ["V0"] + [f"V{i+1}" for i in range(n_atoms)]
    head = tuple(v for v in variables if draw(st.booleans()))
    return Query("Qa", head, tuple(atoms))


class TestDeltaEngineOnRandomAcyclicQueries:
    @given(acyclic_query(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_matches_naive(self, query, seed):
        engine, db = _run_stream(
            query,
            lambda db: DeltaQueryEngine(query, db),
            {"seed": seed, "length": 25},
        )
        assert engine.result() == evaluate(query, db)
