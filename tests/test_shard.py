"""Sharded parallel view-tree maintenance: router, splitter, engine."""

import pickle
import random

import pytest

from repro.data import Database, Update, split_batch
from repro.naive import evaluate, evaluate_scalar
from repro.query import parse_query
from repro.shard import (
    ShardLeafFilter,
    ShardRouter,
    ShardedEngine,
    choose_shard_variable,
    stable_hash,
)
from repro.viewtree import ViewTreeEngine
from tests.conftest import valid_stream

QUERY = parse_query("Q(B, A) = R(B, A) * S(B)")


def fresh_db(rng=None, rows=0, domain=8):
    db = Database()
    db.create("R", ("B", "A"))
    db.create("S", ("B",))
    if rng is not None:
        for _ in range(rows):
            db["R"].insert(rng.randrange(domain), rng.randrange(domain))
            db["S"].insert(rng.randrange(domain))
    return db


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash((1, "x")) == stable_hash((1, "x"))
        assert stable_hash("a") != stable_hash("b")

    def test_matches_subprocess(self):
        # The whole point: routing must agree across processes, which
        # Python's seeded hash() does not guarantee.
        import subprocess
        import sys

        script = (
            "import sys; sys.path.insert(0, 'src'); "
            "from repro.shard import stable_hash; "
            "print(stable_hash('hot-key'))"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            cwd=__file__.rsplit("/tests/", 1)[0],
            env={"PYTHONHASHSEED": "12345"},
        )
        assert out.returncode == 0, out.stderr
        assert int(out.stdout.strip()) == stable_hash("hot-key")


class TestChooseShardVariable:
    def test_most_covering_wins(self):
        assert choose_shard_variable(QUERY) == "B"

    def test_tie_breaks_lexicographically(self):
        query = parse_query("Q(A, B) = R(A) * S(B)")
        assert choose_shard_variable(query) == "A"

    def test_no_variables_rejected(self):
        query = parse_query("Q() = R()")
        with pytest.raises(ValueError):
            choose_shard_variable(query)


class TestShardRouter:
    def test_positions_and_partitioning(self):
        router = ShardRouter(QUERY, "B", 4)
        assert router.positions == {"R": 0, "S": 0}
        assert router.is_partitioned("R") and router.is_partitioned("S")
        assert set(router.partitioned_relations()) == {"R", "S"}

    def test_relation_without_variable_broadcasts(self):
        query = parse_query("Q(A) = R(A, B) * T(C)")
        router = ShardRouter(query, "B", 2)
        assert router.positions == {"R": 1, "T": None}
        assert router.shard_of(Update("T", (7,), 1)) is None

    def test_inconsistent_self_join_broadcasts(self):
        query = parse_query("Q() = R(A, B) * R(B, C)")
        router = ShardRouter(query, "B", 2)
        assert router.positions == {"R": None}

    def test_consistent_self_join_partitions(self):
        query = parse_query("Q() = R(B, A) * R(B, C)")
        router = ShardRouter(query, "B", 2)
        assert router.positions == {"R": 0}

    def test_routing_is_stable_and_in_range(self):
        router = ShardRouter(QUERY, "B", 3)
        for value in range(50):
            owner = router.shard_of(Update("R", (value, 0), 1))
            assert owner == router.shard_of_key("S", (value,))
            assert 0 <= owner < 3

    def test_unknown_variable_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter(QUERY, "Z", 2)
        with pytest.raises(ValueError):
            ShardRouter(QUERY, "B", 0)

    def test_leaf_filter_selects_one_slice(self):
        router = ShardRouter(QUERY, "B", 2)
        filters = [ShardLeafFilter(router, i) for i in range(2)]
        for value in range(20):
            kept = [f("R", (value, 0)) for f in filters]
            assert kept.count(True) == 1  # exactly one owner


class TestSplitBatch:
    def test_partitions_and_broadcasts(self):
        batch = [Update("R", (i, 0), 1) for i in range(6)]
        batch.append(Update("T", (9,), 1))

        def shard_of(update):
            return None if update.relation == "T" else update.key[0] % 3

        parts = split_batch(batch, shard_of, 3)
        assert len(parts) == 3
        for index, part in enumerate(parts):
            owned = [u for u in part if u.relation == "R"]
            assert all(u.key[0] % 3 == index for u in owned)
            # the broadcast update reaches every shard
            assert sum(1 for u in part if u.relation == "T") == 1
        total_owned = sum(len([u for u in p if u.relation == "R"]) for p in parts)
        assert total_owned == 6

    def test_preserves_order_within_shard(self):
        batch = [Update("R", (0, i), 1) for i in range(5)]
        parts = split_batch(batch, lambda u: 0, 2)
        assert [u.key[1] for u in parts[0]] == [0, 1, 2, 3, 4]
        assert parts[1] == []

    def test_out_of_range_owner_rejected(self):
        with pytest.raises(ValueError):
            split_batch([Update("R", (0,), 1)], lambda u: 5, 2)


class TestShardedEngine:
    def run_stream(self, engine, db, rng, n=120):
        arities = {"R": 2, "S": 1}
        for update in valid_stream(rng, arities, n, domain=8):
            db_rel = db[update.relation]
            engine.apply(update)
            assert db_rel.get(update.key) is not None or True
        return engine

    def test_serial_matches_plain(self):
        rng = random.Random(3)
        db = fresh_db(rng, rows=30)
        plain = ViewTreeEngine(QUERY, fresh_db(random.Random(3), rows=30))
        with ShardedEngine(QUERY, db, shards=3, executor="serial") as engine:
            for update in valid_stream(random.Random(7), {"R": 2, "S": 1}, 80):
                engine.apply(update)
                plain.apply(update)
            assert dict(engine.enumerate()) == dict(plain.enumerate())
            assert engine.output_relation() == evaluate(QUERY, db)

    def test_thread_executor_batches(self):
        rng = random.Random(11)
        db = fresh_db(rng, rows=20)
        batch = valid_stream(random.Random(5), {"R": 2, "S": 1}, 200)
        with ShardedEngine(QUERY, db, shards=4, executor="thread") as engine:
            engine.apply_batch(batch)
            assert engine.output_relation() == evaluate(QUERY, db)

    def test_process_executor_batches(self):
        db = fresh_db(random.Random(13), rows=10)
        batch = valid_stream(random.Random(5), {"R": 2, "S": 1}, 60)
        with ShardedEngine(QUERY, db, shards=2, executor="process") as engine:
            engine.apply_batch(batch[:30])
            # interleave a single update between batches: the adopted
            # worker-side engines must keep accepting inline updates
            engine.apply(Update("R", (1, 1), 1))
            engine.apply_batch(batch[30:])
            engine.apply(Update("R", (1, 1), -1))
            assert engine.output_relation() == evaluate(QUERY, db)

    def test_engines_are_picklable(self):
        db = fresh_db(random.Random(1), rows=15)
        with ShardedEngine(QUERY, db, shards=2, executor="serial") as engine:
            for shard in engine.engines:
                clone = pickle.loads(pickle.dumps(shard))
                assert clone.output_relation() == shard.output_relation()

    def test_boolean_query_scalar(self):
        query = parse_query("Q() = R(B, A) * S(B)")
        db = fresh_db(random.Random(2), rows=25)
        with ShardedEngine(query, db, shards=3, executor="serial") as engine:
            assert engine.scalar() == evaluate_scalar(query, db)
            engine.apply(Update("S", (0,), 2))
            assert engine.scalar() == evaluate_scalar(query, db)
            assert dict(engine.enumerate()).get((), 0) == engine.scalar()

    def test_lookup(self):
        db = fresh_db()
        with ShardedEngine(QUERY, db, shards=2, executor="serial") as engine:
            engine.apply(Update("R", (1, 2), 3))
            engine.apply(Update("S", (1,), 5))
            assert engine.lookup((1, 2)) == 15
            assert engine.lookup((1, 9)) == 0
            with pytest.raises(ValueError):
                engine.lookup((1,))

    def test_merged_views_match_plain_engine(self):
        rng = random.Random(17)
        db = fresh_db(rng, rows=40)
        plain = ViewTreeEngine(QUERY, db.copy())
        with ShardedEngine(QUERY, db, shards=3, executor="serial") as engine:
            merged = engine.merged_views()
            for root in plain.roots:
                for node in root.walk():
                    assert merged[f"V_{node.variable}"] == node.view

    def test_broadcast_only_component(self):
        # T carries no B: its whole subtree replicates across shards and
        # must be merged by taking one copy, not summed N times.
        query = parse_query("Q(B, C) = R(B, A) * S(B) * T(C)")
        db = fresh_db(random.Random(4), rows=15)
        db.create("T", ("C",))
        for value in range(4):
            db["T"].insert(value)
        with ShardedEngine(
            query, db, shards=3, shard_variable="B", executor="serial"
        ) as engine:
            assert engine.output_relation() == evaluate(query, db)
            engine.apply(Update("T", (9,), 2))
            assert engine.output_relation() == evaluate(query, db)

    def test_merged_stats_labels(self):
        db = fresh_db(random.Random(6), rows=10)
        with ShardedEngine(QUERY, db, shards=2, executor="serial") as engine:
            engine.attach_stats()
            engine.apply_batch(valid_stream(random.Random(8), {"R": 2, "S": 1}, 40))
            list(engine.enumerate())
            stats = engine.merged_stats()
        assert set(stats.shard_summaries) == {"shard0", "shard1"}
        payload = stats.to_dict()
        assert set(payload["shards"]) == {"shard0", "shard1"}
        assert any(view.startswith("shard") for view in payload["delta_sizes"])
        # the coordinator counts each logical batch exactly once
        assert stats.batches == 1

    def test_invalid_configuration_rejected(self):
        db = fresh_db()
        with pytest.raises(ValueError):
            ShardedEngine(QUERY, db, shards=0)
        with pytest.raises(ValueError):
            ShardedEngine(QUERY, db, shards=2, executor="fibers")
        with pytest.raises(ValueError):
            ShardedEngine(QUERY, db, shards=2, shard_variable="Z")

    def test_describe_mentions_routing(self):
        db = fresh_db()
        with ShardedEngine(QUERY, db, shards=2, executor="serial") as engine:
            text = engine.describe()
        assert "shard" in text and "B" in text
