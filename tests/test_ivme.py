"""IVM^epsilon: partitioned relations, triangle counter, trade-off engine."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Database, Relation, Update, counting
from repro.ivme import PartitionedRelation, TradeoffEngine, TriangleCounter
from repro.naive import evaluate, evaluate_scalar
from repro.query import parse_query

TRIANGLE = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
TRADEOFF = parse_query("Q(A) = R(A, B) * S(B)")


class TestPartitionedRelation:
    def test_light_until_threshold(self):
        part = PartitionedRelation("R", ("A", "B"), "A", threshold=3)
        part.add((1, 10), 1)
        part.add((1, 11), 1)
        assert not part.is_heavy(1)
        part.add((1, 12), 1)
        assert part.is_heavy(1)
        assert len(part.light) == 0 and len(part.heavy) == 3

    def test_demotion_with_hysteresis(self):
        part = PartitionedRelation("R", ("A", "B"), "A", threshold=4)
        for b in range(4):
            part.add((1, b), 1)
        assert part.is_heavy(1)
        part.add((1, 0), -1)
        part.add((1, 1), -1)
        assert part.is_heavy(1)  # 2 >= 4/2: hysteresis holds it
        part.add((1, 2), -1)
        assert not part.is_heavy(1)  # 1 < 2: demoted

    def test_listener_sees_migration(self):
        events = []
        part = PartitionedRelation("R", ("A", "B"), "A", threshold=2)
        part.add_listener(lambda v, moved, heavy: events.append((v, len(moved), heavy)))
        part.add((5, 1), 1)
        part.add((5, 2), 1)
        assert events == [(5, 2, True)]

    def test_get_spans_parts(self):
        part = PartitionedRelation("R", ("A", "B"), "A", threshold=2)
        part.add((1, 1), 3)
        assert part.get((1, 1)) == 3
        part.add((1, 2), 1)  # promotes
        assert part.get((1, 1)) == 3
        assert part.part_of(1) is part.heavy

    def test_degree_counts_distinct_keys(self):
        part = PartitionedRelation("R", ("A", "B"), "A", threshold=10)
        part.add((1, 1), 1)
        part.add((1, 1), 2)  # same key: degree stays 1
        assert part.degree(1) == 1
        part.add((1, 1), -3)
        assert part.degree(1) == 0

    def test_repartition_with_new_threshold(self):
        part = PartitionedRelation("R", ("A", "B"), "A", threshold=100)
        for b in range(5):
            part.add((1, b), 1)
        assert not part.is_heavy(1)
        part.repartition(threshold=3)
        assert part.is_heavy(1)
        part.repartition(threshold=50)
        assert not part.is_heavy(1)

    def test_set_threshold_migrates_eagerly(self):
        # Regression: set_threshold used to record the new threshold but
        # leave every tuple in its old part, so is_heavy/heavy/light
        # disagreed with the threshold until the next repartition().
        part = PartitionedRelation("R", ("A", "B"), "A", threshold=100)
        for b in range(5):
            part.add((1, b), 1)
        assert not part.is_heavy(1)
        part.set_threshold(3)
        assert part.is_heavy(1)
        assert len(part.heavy) == 5 and len(part.light) == 0
        part.set_threshold(50)
        assert not part.is_heavy(1)
        assert len(part.light) == 5 and len(part.heavy) == 0

    def test_set_threshold_notifies_listeners(self):
        events = []
        part = PartitionedRelation("R", ("A", "B"), "A", threshold=100)
        part.add_listener(
            lambda v, moved, heavy: events.append((v, len(moved), heavy))
        )
        for b in range(3):
            part.add((1, b), 1)
        part.set_threshold(2)
        assert events == [(1, 3, True)]

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PartitionedRelation("R", ("A",), "Z", 2)
        with pytest.raises(ValueError):
            PartitionedRelation("R", ("A",), "A", 2, hysteresis=1.0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 6), st.integers(-1, 1)),
            max_size=80,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_invariants(self, ops):
        """After any update sequence: parts are disjoint, every tuple is
        in the part its value's heaviness dictates, and degrees match."""
        part = PartitionedRelation("R", ("A", "B"), "A", threshold=3)
        for a, b, m in ops:
            if m:
                part.add((a, b), m)
        light_keys = set(part.light.keys())
        heavy_keys = set(part.heavy.keys())
        assert not (light_keys & heavy_keys)
        for key in light_keys:
            assert not part.is_heavy(key[0])
        for key in heavy_keys:
            assert part.is_heavy(key[0])
        degrees: dict[int, int] = {}
        for key in light_keys | heavy_keys:
            degrees[key[0]] = degrees.get(key[0], 0) + 1
        for value, degree in degrees.items():
            assert part.degree(value) == degree


class TestTriangleCounter:
    @pytest.mark.parametrize("epsilon", [0.0, 0.33, 0.5, 1.0])
    def test_differential_against_naive(self, epsilon, rng):
        db = Database()
        for name in ("R", "S", "T"):
            db.create(name, ("X", "Y"))
        counter = TriangleCounter(epsilon=epsilon)
        for step in range(800):
            rel = rng.choice(["R", "S", "T"])
            update = Update(
                rel, (rng.randrange(8), rng.randrange(8)), rng.choice([1, 1, -1])
            )
            counter.apply(update)
            db[rel].add(update.key, update.payload)
            if step % 200 == 199:
                assert counter.count == evaluate_scalar(TRIANGLE, db)

    def test_skewed_hub(self, rng):
        """One hub node with degree O(N): exactly the case heavy/light
        partitioning exists for."""
        counter = TriangleCounter(epsilon=0.5)
        db = Database()
        for name in ("R", "S", "T"):
            db.create(name, ("X", "Y"))
        for i in range(200):
            for rel, key in (
                ("R", (0, i)),
                ("S", (i, rng.randrange(30))),
                ("T", (rng.randrange(30), 0)),
            ):
                counter.apply(Update(rel, key, 1))
                db[rel].add(key, 1)
        assert counter.count == evaluate_scalar(TRIANGLE, db)
        assert counter.R.is_heavy(0)

    def test_detect(self):
        counter = TriangleCounter()
        assert not counter.detect()
        for rel, key in (("R", (1, 2)), ("S", (2, 3)), ("T", (3, 1))):
            counter.apply(Update(rel, key, 1))
        assert counter.detect()
        counter.apply(Update("S", (2, 3), -1))
        assert not counter.detect()

    def test_bulk_load(self, rng):
        db = Database()
        for name in ("R", "S", "T"):
            rel = db.create(name, ("X", "Y"))
            for _ in range(150):
                rel.insert(rng.randrange(10), rng.randrange(10))
        counter = TriangleCounter(database=db)
        assert counter.count == evaluate_scalar(TRIANGLE, db)

    def test_unknown_relation(self):
        with pytest.raises(KeyError):
            TriangleCounter().apply(Update("X", (1, 2), 1))

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            TriangleCounter(epsilon=1.5)

    def test_rebalance_keeps_count(self, rng):
        counter = TriangleCounter(epsilon=0.5)
        db = Database()
        for name in ("R", "S", "T"):
            db.create(name, ("X", "Y"))
        for _ in range(300):
            rel = rng.choice(["R", "S", "T"])
            update = Update(rel, (rng.randrange(6), rng.randrange(6)), 1)
            counter.apply(update)
            db[rel].add(update.key, update.payload)
        before = counter.count
        counter.rebalance()
        assert counter.count == before == evaluate_scalar(TRIANGLE, db)

    def test_sublinear_update_cost_on_skew(self):
        """Per-update op count stays well below N on a hub-heavy graph,
        unlike the O(N) delta-query approach (Section 3.3's point)."""
        costs = []
        for n in (200, 800):
            counter = TriangleCounter(epsilon=0.5)
            for i in range(n):
                counter.apply(Update("S", (0, i), 1))  # hub B = 0
                counter.apply(Update("T", (i, 0), 1))
            with counting() as ops:
                counter.apply(Update("R", (0, 0), 1))
            costs.append(ops.total())
        # Quadrupling N should far less than quadruple the update cost.
        assert costs[1] < costs[0] * 3


class TestTradeoffEngine:
    @pytest.mark.parametrize("epsilon", [0.0, 0.25, 0.5, 0.75, 1.0])
    def test_differential(self, epsilon, rng):
        engine = TradeoffEngine(epsilon=epsilon)
        db = Database()
        db.create("R", ("A", "B"))
        db.create("S", ("B",))
        for step in range(600):
            if rng.random() < 0.6:
                update = Update("R", (rng.randrange(25), rng.randrange(12)), rng.choice([1, 1, -1]))
            else:
                update = Update("S", (rng.randrange(12),), rng.choice([1, 1, -1]))
            engine.apply(update)
            db[update.relation].add(update.key, update.payload)
            if step % 150 == 149:
                assert engine.result() == evaluate(TRADEOFF, db)

    def test_bulk_load(self, rng):
        db = Database()
        r = db.create("R", ("A", "B"))
        s = db.create("S", ("B",))
        for _ in range(200):
            r.insert(rng.randrange(20), rng.randrange(10))
        for b in range(10):
            s.insert(b)
        engine = TradeoffEngine(database=db)
        assert engine.result() == evaluate(TRADEOFF, db)

    def test_eager_extreme_has_cheap_enumeration(self):
        """eps = 1: everything eager; payload_of needs no heavy scan."""
        engine = TradeoffEngine(epsilon=1.0)
        for a in range(50):
            engine.apply(Update("R", (a, 0), 1))
        engine.apply(Update("S", (0,), 1))
        engine.rebalance()
        with counting() as ops:
            list(engine.enumerate())
        eager_ops = ops.total()

        lazy = TradeoffEngine(epsilon=0.0)
        for a in range(50):
            lazy.apply(Update("R", (a, 0), 1))
        lazy.apply(Update("S", (0,), 1))
        lazy.rebalance()
        with counting() as ops:
            list(lazy.enumerate())
        lazy_ops = ops.total()
        assert eager_ops < lazy_ops

    def test_lazy_extreme_has_cheap_updates(self):
        """eps = 0: updates to S on a heavy B cost O(1); eps = 1 pays O(N)."""
        def cost(epsilon):
            engine = TradeoffEngine(epsilon=epsilon)
            # Hub B = 0 with degree 200, plus 300 background tuples so the
            # hub's degree stays below N (and below N^1 at eps = 1).
            for a in range(200):
                engine.apply(Update("R", (a, 0), 1))
            for a in range(300):
                engine.apply(Update("R", (a, 1 + a % 50), 1))
            engine.rebalance()
            with counting() as ops:
                engine.apply(Update("S", (0,), 1))
            return ops.total()

        assert cost(0.0) * 20 < cost(1.0)

    def test_unknown_relation(self):
        with pytest.raises(KeyError):
            TradeoffEngine().apply(Update("X", (1,), 1))
