"""Smoke tests: the runnable examples keep running.

Each example's ``main()`` is executed with captured stdout and checked
for its headline output.  The retailer dashboard is exercised through a
reduced workload (its full run is a benchmark, not a test).
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "plan: viewtree" in out
        assert "orders=2" in out and "orders=1" in out

    def test_flight_search(self, capsys):
        load_example("flight_search").main()
        out = capsys.readouterr().out
        assert "tractable CQAP: True" in out
        assert "gate E26" in out  # the gate change took effect
        assert "False" in out  # the intractable contrast

    def test_lineage_audit(self, capsys):
        load_example("lineage_audit").main()
        out = capsys.readouterr().out
        assert "o2*p3" in out
        assert "DISAPPEARS" in out

    def test_social_triangles(self, capsys):
        load_example("social_triangles").main()
        out = capsys.readouterr().out
        assert "final window triangle count:" in out
        assert "heavy" in out

    def test_streaming_regression(self, capsys):
        module = load_example("streaming_regression")
        module.main()
        out = capsys.readouterr().out
        # The fitted slope converges near the true 2.5.
        assert "price ~  2.4" in out or "price ~  2.5" in out

    def test_multi_query_workload(self, capsys):
        load_example("multi_query_workload").main()
        out = capsys.readouterr().out
        assert "Funnel: cascades over Sessions" in out

    def test_retailer_dashboard_reduced(self, capsys):
        module = load_example("retailer_dashboard")
        from repro.workloads import retailer_update_stream

        updates = retailer_update_stream(
            400, locations=25, dates=20, items=50, seed=1
        )
        module.run("eager-fact", updates, batch_size=100, enum_every=2)
        out = capsys.readouterr().out
        assert "eager-fact" in out and "updates/s" in out
