"""Shared test fixtures and helpers."""

from __future__ import annotations

import random

import pytest

from repro.data import Database


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


def make_database(spec: dict[str, tuple[tuple[str, ...], dict]]) -> Database:
    """Build a database from {name: (schema, {key: payload})}."""
    db = Database()
    for name, (schema, data) in spec.items():
        relation = db.create(name, schema)
        for key, payload in data.items():
            relation.add(key, payload)
    return db


def fig2_database() -> Database:
    """The Example 3.1 / Fig. 2 style triangle database.

    Three tuples in the join output, of which exactly one is affected by
    the delete dR = {(a2, b1) -> -2}; the paper's numbers are asserted in
    test_paper_examples.py.
    """
    return make_database(
        {
            "R": (("A", "B"), {("a1", "b1"): 1, ("a2", "b1"): 3}),
            "S": (("B", "C"), {("b1", "c1"): 2, ("b1", "c2"): 1}),
            "T": (
                ("C", "A"),
                {("c1", "a1"): 1, ("c2", "a2"): 2, ("c2", "a1"): 1},
            ),
        }
    )


def random_binary_relation(db, name, vars, rng, n, domain):
    relation = db.create(name, vars)
    for _ in range(n):
        relation.insert(*(rng.randrange(domain) for _ in vars))
    return relation


def valid_stream(rng, relations, count, domain=8, delete_prob=0.25):
    """A random update stream that keeps all multiplicities non-negative.

    The paper assumes valid batches (Section 2: all tuples keep positive
    multiplicities); factorized enumeration depends on it, so tests that
    exercise enumeration must not drive multiplicities negative.

    ``relations`` is {name: arity}.
    """
    from repro.data import Update

    live: dict[str, dict[tuple, int]] = {name: {} for name in relations}
    stream = []
    for _ in range(count):
        name = rng.choice(list(relations))
        current = live[name]
        if current and rng.random() < delete_prob:
            key = rng.choice(list(current))
            stream.append(Update(name, key, -1))
            current[key] -= 1
            if not current[key]:
                del current[key]
        else:
            key = tuple(rng.randrange(domain) for _ in range(relations[name]))
            stream.append(Update(name, key, 1))
            current[key] = current.get(key, 0) + 1
    return stream
