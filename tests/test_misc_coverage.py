"""Focused edge-case tests across modules."""

import pytest

from repro import plan_maintenance
from repro.data import Database, Relation
from repro.query import parse_query
from repro.rings import CovarianceRing, Moments, Z, moment_lifting


class TestPlannerEdges:
    def test_insert_only_does_not_apply_to_cyclic(self):
        q = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
        plan = plan_maintenance(q, insert_only=True)
        assert plan.strategy == "ivm-eps-triangle"

    def test_insert_only_does_not_override_q_hierarchical(self):
        q = parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)")
        plan = plan_maintenance(q, insert_only=True)
        assert plan.strategy == "viewtree"

    def test_triangle_shape_requires_exact_pattern(self):
        # Four atoms: not the triangle special case.
        q = parse_query("Q() = R(A,B) * S(B,C) * T(C,A) * U(A,B)")
        assert plan_maintenance(q).strategy == "delta"
        # Self-loops in atoms: not triangle-shaped either.
        q2 = parse_query("Q() = R(A,A) * S(A,C) * T(C,A)")
        assert plan_maintenance(q2).strategy != "ivm-eps-triangle"

    def test_fds_ignored_when_query_already_q_hierarchical(self):
        from repro.constraints import parse_fds

        q = parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)")
        plan = plan_maintenance(q, parse_fds("X -> Z"))
        assert plan.strategy == "viewtree"


class TestReprsAndRendering:
    def test_relation_pretty_truncates(self):
        rel = Relation("R", ("A",), data={(i,): 1 for i in range(30)})
        text = rel.pretty(limit=5)
        assert "more" in text

    def test_database_repr(self):
        db = Database()
        db.create("R", ("A",)).insert(1)
        assert "R(1)" in repr(db)

    def test_query_str_boolean_cqap(self):
        q = parse_query("Q(. | A) = R(A, B)")
        assert "| A" in str(q)
        assert str(q).startswith("Q(")

    def test_schema_repr(self):
        from repro.data import Schema

        assert "A" in repr(Schema.of("A", "B"))

    def test_plan_str(self):
        plan = plan_maintenance(parse_query("Q(A) = R(A)"))
        assert "update" in str(plan)


class TestMomentsAccessors:
    def test_empty_moments(self):
        empty = Moments()
        assert empty.mean_of("X") == 0.0
        assert empty.covariance("X", "Y") == 0.0

    def test_mean(self):
        ring = CovarianceRing()
        total = ring.add(moment_lifting("X")(2.0), moment_lifting("X")(4.0))
        assert total.mean_of("X") == 3.0

    def test_quad_symmetric_access(self):
        ring = CovarianceRing()
        xy = ring.mul(moment_lifting("X")(2.0), moment_lifting("Y")(3.0))
        assert xy.quad_of("X", "Y") == xy.quad_of("Y", "X") == 6.0

    def test_moments_equality_ignores_zero_entries(self):
        a = Moments(1.0, {"X": 0.0, "Y": 2.0}, {})
        b = Moments(1.0, {"Y": 2.0}, {})
        assert a == b
        assert hash(a) == hash(b)


class TestRelationMisc:
    def test_iter_yields_keys(self):
        rel = Relation("R", ("A",), data={(1,): 1, (2,): 3})
        assert sorted(rel) == [(1,), (2,)]

    def test_scale_by_zero_clears(self):
        rel = Relation("R", ("A",), data={(1,): 5})
        assert len(rel.scale(0)) == 0

    def test_eq_notimplemented_for_other_types(self):
        rel = Relation("R", ("A",))
        assert rel != 42

    def test_clear_resets_indexes(self):
        rel = Relation("R", ("A", "B"), data={(1, 2): 1})
        rel.index_on(("A",))
        rel.clear()
        assert rel.group_size(("A",), (1,)) == 0
        rel.insert(1, 3)
        assert list(rel.group(("A",), (1,))) == [(1, 3)]


class TestViewNodeIntrospection:
    def test_guard_relation_error_path(self):
        from repro.viewtree.engine import ViewNode

        node = ViewNode("X", (), True)
        with pytest.raises(RuntimeError):
            node.guard_relation()

    def test_walk_covers_children(self):
        from repro.viewtree.engine import ViewNode

        parent = ViewNode("X", (), True)
        child = ViewNode("Y", ("X",), True)
        parent.children.append(child)
        assert [n.variable for n in parent.walk()] == ["X", "Y"]
