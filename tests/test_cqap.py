"""CQAPs: fractures, the tractability dichotomy, and the access engine."""

import pytest

from repro.cqap import CQAPEngine, fracture, is_tractable_cqap
from repro.data import Database, Update
from repro.naive import evaluate
from repro.query import parse_query
from tests.conftest import valid_stream

TRIANGLE_CHECK = parse_query("Qt(. | A, B, C) = E(A,B) * E(B,C) * E(C,A)")
EDGE_LISTING = parse_query("Ql(C | A, B) = E(A,B) * E(B,C) * E(C,A)")
LOOKUP = parse_query("Qab(A | B) = S(A,B) * T(B)")


class TestFracture:
    def test_triangle_check_fracture_has_three_components(self):
        f = fracture(TRIANGLE_CHECK)
        assert len(f.components) == 3
        for component in f.components:
            assert len(component.atoms) == 1
            assert len(component.input_variables) == 2

    def test_input_origin_mapping(self):
        f = fracture(TRIANGLE_CHECK)
        origins = sorted(set(f.input_origin.values()))
        assert origins == ["A", "B", "C"]

    def test_edge_listing_fracture_structure(self):
        f = fracture(EDGE_LISTING)
        # E(A,B) splits off; E(B,C) * E(C,A) stay connected through C.
        sizes = sorted(len(c.atoms) for c in f.components)
        assert sizes == [1, 2]

    def test_same_input_merged_within_component(self):
        q = parse_query("Q(. | A) = R(A, X) * S(X, A)")
        f = fracture(q)
        assert len(f.components) == 1
        component = f.components[0]
        # Two occurrences of A merge back into one fresh input variable.
        assert len(component.input_variables) == 1

    def test_output_variables_kept(self):
        f = fracture(LOOKUP)
        all_outputs = [v for c in f.components for v in c.head
                       if v not in c.input_variables]
        assert all_outputs == ["A"]

    def test_combined_query(self):
        combined = fracture(TRIANGLE_CHECK).combined()
        assert len(combined.atoms) == 3
        assert len(combined.input_variables) == 6


class TestTractability:
    def test_paper_examples(self):
        assert is_tractable_cqap(TRIANGLE_CHECK)
        assert not is_tractable_cqap(EDGE_LISTING)
        assert is_tractable_cqap(LOOKUP)

    def test_q_hierarchical_is_tractable_with_trivial_inputs(self):
        # q-hierarchical queries are the tractable CQAPs without inputs;
        # adding all free variables as inputs keeps tractability here.
        q = parse_query("Q(. | Y) = R(Y, X) * S(Y, Z)")
        assert is_tractable_cqap(q)

    def test_non_hierarchical_fracture_intractable(self):
        q = parse_query("Q(X, Y | W) = R(X) * S(X, Y) * T(Y) * U(W)")
        assert not is_tractable_cqap(q)


class TestCQAPEngine:
    def test_rejects_intractable(self):
        db = Database()
        db.create("E", ("X", "Y"))
        with pytest.raises(ValueError):
            CQAPEngine(EDGE_LISTING, db)

    def test_rejects_no_inputs(self):
        db = Database()
        db.create("R", ("A", "B"))
        with pytest.raises(ValueError):
            CQAPEngine(parse_query("Q(A) = R(A, B)"), db)

    def test_triangle_check_differential(self, rng):
        db = Database()
        db.create("E", ("X", "Y"))
        engine = CQAPEngine(TRIANGLE_CHECK, db)
        edges: dict[tuple, int] = {}
        for update in valid_stream(rng, {"E": 2}, 250, domain=10):
            engine.apply(update)
            edges[update.key] = edges.get(update.key, 0) + update.payload
            if edges[update.key] == 0:
                del edges[update.key]
        for _ in range(200):
            a, b, c = (rng.randrange(10) for _ in range(3))
            expected = (
                (a, b) in edges and (b, c) in edges and (c, a) in edges
            )
            assert engine.answer_boolean({"A": a, "B": b, "C": c}) == expected

    def test_answer_payload_is_product(self):
        db = Database()
        db.create("E", ("X", "Y"))
        engine = CQAPEngine(TRIANGLE_CHECK, db)
        engine.apply(Update("E", (1, 2), 2))
        engine.apply(Update("E", (2, 3), 3))
        engine.apply(Update("E", (3, 1), 5))
        answers = list(engine.answer({"A": 1, "B": 2, "C": 3}))
        assert answers == [((), 30)]

    def test_lookup_join_positional_inputs(self, rng):
        db = Database()
        db.create("S", ("A", "B"))
        db.create("T", ("B",))
        engine = CQAPEngine(LOOKUP, db)
        for update in valid_stream(rng, {"S": 2}, 120, domain=8):
            engine.apply(update)
        for b in range(0, 8, 2):
            engine.apply(Update("T", (b,), 1))
        for b in range(8):
            got = sorted(key[0] for key, _ in engine.answer((b,)))
            s_data = db["S"].to_dict()
            expected = sorted(
                {a for (a, bb) in s_data if bb == b}
            ) if (b,) in db["T"].data else []
            assert got == expected

    def test_answer_input_validation(self):
        db = Database()
        db.create("S", ("A", "B"))
        db.create("T", ("B",))
        engine = CQAPEngine(LOOKUP, db)
        with pytest.raises(ValueError):
            list(engine.answer(()))  # wrong arity
        with pytest.raises(ValueError):
            list(engine.answer({"Z": 1}))  # wrong name

    def test_update_unknown_relation(self):
        db = Database()
        db.create("S", ("A", "B"))
        db.create("T", ("B",))
        engine = CQAPEngine(LOOKUP, db)
        with pytest.raises(KeyError):
            engine.apply(Update("X", (1,), 1))

    def test_constant_access_cost(self):
        """Access requests cost O(1) regardless of the graph size
        (Theorem 4.8's upper bound for the triangle-check CQAP)."""
        from repro.data import counting

        costs = []
        for n in (100, 400):
            db = Database()
            db.create("E", ("X", "Y"))
            engine = CQAPEngine(TRIANGLE_CHECK, db)
            for i in range(n):
                engine.apply(Update("E", (i, (i + 1) % n), 1))
            with counting() as ops:
                for probe in range(20):
                    engine.answer_boolean(
                        {"A": probe, "B": probe + 1, "C": probe + 2}
                    )
            costs.append(ops.total())
        assert costs[1] <= costs[0] * 2 + 10
