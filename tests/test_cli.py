"""The command-line interface."""

import json

import pytest

from repro.cli import main


class TestClassify:
    def test_q_hierarchical(self, capsys):
        assert main(["classify", "Q(Y,X,Z) = R(Y,X) * S(Y,Z)"]) == 0
        out = capsys.readouterr().out
        assert "q-hierarchical:        yes" in out
        assert "plan: viewtree" in out

    def test_with_fds(self, capsys):
        code = main(
            [
                "classify",
                "Q(Z,Y,X,W) = R(X,W) * S(X,Y) * T(Y,Z)",
                "--fd",
                "X -> Y",
                "--fd",
                "Y -> Z",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "q-hier. under FDs:     yes" in out
        assert "plan: fd-viewtree" in out

    def test_cqap(self, capsys):
        main(["classify", "Q(. | A, B, C) = E(A,B) * E(B,C) * E(C,A)"])
        out = capsys.readouterr().out
        assert "tractable CQAP:        yes" in out
        assert "plan: cqap" in out

    def test_static(self, capsys):
        main(["classify", "Q(A,B,C) = R(A,D) * S(A,B) * T@s(B,C)"])
        out = capsys.readouterr().out
        assert "static/dyn tractable:  yes" in out

    def test_insert_only_flag(self, capsys):
        main(
            [
                "classify",
                "Q(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)",
                "--insert-only",
            ]
        )
        out = capsys.readouterr().out
        assert "plan: insert-only" in out

    def test_triangle(self, capsys):
        main(["classify", "Q() = R(A,B) * S(B,C) * T(C,A)"])
        out = capsys.readouterr().out
        assert "plan: ivm-eps-triangle" in out


class TestDemo:
    def test_fig2_numbers(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "Q = 9" in out
        assert "Q = 5" in out
        assert "3 - 2 = 1" in out


class TestStats:
    def test_replay_prints_recorder(self, capsys):
        code = main(
            [
                "stats",
                "Q(A) = R(A,B) * S(B)",
                "--updates",
                "200",
                "--prefill",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:  viewtree" in out
        assert "updates" in out
        assert "replayed 200 updates" in out

    def test_json_dump(self, tmp_path, capsys):
        path = tmp_path / "stats.json"
        code = main(
            [
                "stats",
                "Q() = R(A,B) * S(B,C) * T(C,A)",
                "--updates",
                "300",
                "--prefill",
                "20",
                "--json",
                str(path),
            ]
        )
        assert code == 0
        capsys.readouterr()
        with open(path) as handle:
            data = json.load(handle)
        assert data["schema"] == "repro.obs/1"
        assert data["stats"]["updates"] + data["stats"]["batches"] > 0
        assert data["meta"]["plan"] == "ivm-eps-triangle"
        assert data["meta"]["updates"] == 300

    def test_sharded_zipf_replay(self, tmp_path, capsys):
        path = tmp_path / "sharded.json"
        code = main(
            [
                "stats",
                "Q(B,A) = R(B,A) * S(B)",
                "--updates",
                "400",
                "--shards",
                "4",
                "--workload",
                "zipf",
                "--zipf-s",
                "1.5",
                "--json",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:  sharded-viewtree" in out
        assert "workload: zipf" in out
        assert "per-shard maintenance:" in out
        with open(path) as handle:
            data = json.load(handle)
        assert data["schema"] == "repro.obs/1"
        assert data["meta"]["plan"] == "sharded-viewtree"
        assert data["meta"]["shards"] == 4
        assert data["meta"]["workload"] == "zipf"
        shards = data["stats"]["shards"]
        assert set(shards) == {f"shard{i}" for i in range(4)}
        assert sum(s["batches"] for s in shards.values()) > 0

    def test_static_only_query_refused(self, capsys):
        code = main(["stats", "Q(A,B) = R@s(A,B)", "--updates", "10"])
        assert code == 1
        out = capsys.readouterr().out
        assert "no dynamic relations" in out

    def test_sliding_window_batched_replay(self, tmp_path, capsys):
        path = tmp_path / "window.json"
        code = main(
            [
                "stats",
                "Q(Y,X,Z) = R(Y,X) * S(Y,Z)",
                "--updates",
                "600",
                "--workload",
                "sliding-window",
                "--window",
                "64",
                "--batch-size",
                "50",
                "--json",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "workload: sliding-window (window=64)" in out
        # The batch kernel engaged: coalescing counters are non-zero.
        assert "batch kernel:" in out
        with open(path) as handle:
            data = json.load(handle)
        assert data["meta"]["workload"] == "sliding-window"
        assert data["meta"]["window"] == 64
        assert data["meta"]["batch"] == 50
        batch = data["stats"]["batch"]
        assert batch["raw_updates"] > 0
        assert batch["raw_updates"] >= batch["coalesced_updates"]

    def test_sliding_window_requires_deletes(self, capsys):
        code = main(
            [
                "stats",
                "Q(A) = R(A,B) * S(B)",
                "--workload",
                "sliding-window",
                "--insert-only",
            ]
        )
        assert code == 1
        assert "needs deletes" in capsys.readouterr().out

    def test_batch_size_alias(self, capsys):
        code = main(
            [
                "stats",
                "Q(A) = R(A,B) * S(B)",
                "--updates",
                "100",
                "--batch",
                "25",
            ]
        )
        assert code == 0
        capsys.readouterr()


class TestBenchplot:
    def _record(self, tmp_path):
        record = {
            "schema": "repro.bench/1",
            "name": "demo",
            "tables": [
                {
                    "title": "throughput table",
                    "columns": ["configuration", "uniform upd/s", "speedup"],
                    "rows": [
                        ["plain", "35,156", "1.00x"],
                        ["batched", "88,000", "2.50x"],
                    ],
                }
            ],
        }
        path = tmp_path / "BENCH_demo.json"
        path.write_text(json.dumps(record))
        return path

    def test_ascii_fallback_renders_bars(self, tmp_path, capsys):
        path = self._record(tmp_path)
        out_dir = tmp_path / "plots"
        code = main(["benchplot", str(path), "-o", str(out_dir), "--ascii"])
        assert code == 0
        capsys.readouterr()
        written = list(out_dir.glob("*.txt"))
        assert len(written) == 1
        text = written[0].read_text()
        assert "throughput table" in text
        assert "uniform upd/s" in text
        assert "#" in text
        assert "88000" in text

    def test_no_metric_tables_exits_nonzero(self, tmp_path, capsys):
        record = {
            "schema": "repro.bench/1",
            "name": "empty",
            "tables": [
                {"title": "labels only", "columns": ["a"], "rows": [["x"]]}
            ],
        }
        path = tmp_path / "BENCH_empty.json"
        path.write_text(json.dumps(record))
        code = main(["benchplot", str(path), "-o", str(tmp_path / "p")])
        assert code == 1
        assert "no plottable tables" in capsys.readouterr().out

    def test_committed_records_plot(self, tmp_path, capsys):
        """The real BENCH_*.json records in the repo must render."""
        import os

        results = os.path.join(
            os.path.dirname(__file__), "..", "benchmarks", "results"
        )
        records = [
            os.path.join(results, name)
            for name in sorted(os.listdir(results))
            if name.startswith("BENCH_") and name.endswith(".json")
        ]
        assert records
        out_dir = tmp_path / "plots"
        code = main(["benchplot", *records, "-o", str(out_dir), "--ascii"])
        assert code == 0
        capsys.readouterr()
        assert list(out_dir.glob("*.txt"))


class TestErrors:
    def test_bad_query(self):
        with pytest.raises(Exception):
            main(["classify", "not a query"])

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])
