"""IVM over the float ring: SUM aggregates with rounding tolerance."""

import random

import pytest

from repro.data import Database, Update
from repro.naive import evaluate
from repro.query import parse_query
from repro.rings import MIN_PLUS, FloatRing, LiftingMap, identity_lifting
from repro.viewtree import ViewTreeEngine


class TestFloatRingMaintenance:
    def test_sum_of_revenue_per_store(self):
        ring = FloatRing()
        db = Database(ring=ring)
        sales = db.create("Sales", ("store", "amount"))
        open_stores = db.create("Open", ("store",))
        q = parse_query("Q(store) = Sales(store, amount) * Open(store)")
        lifting = LiftingMap(ring, {"amount": identity_lifting(ring)})
        engine = ViewTreeEngine(q, db, lifting=lifting)

        engine.apply(Update("Open", ("zurich",), 1.0))
        engine.apply(Update("Sales", ("zurich", 19.99), 1.0))
        engine.apply(Update("Sales", ("zurich", 5.01), 1.0))
        out = dict(engine.enumerate())
        assert out[("zurich",)] == pytest.approx(25.0)

    def test_cancellation_cleans_entries(self):
        ring = FloatRing()
        db = Database(ring=ring)
        db.create("R", ("A",))
        q = parse_query("Q(A) = R(A)")
        engine = ViewTreeEngine(q, db)
        engine.apply(Update("R", (1,), 0.1))
        engine.apply(Update("R", (1,), 0.2))
        engine.apply(Update("R", (1,), -0.30000000000000004))
        assert dict(engine.enumerate()) == {}
        assert len(db["R"]) == 0

    def test_random_float_stream_tracks_naive(self):
        ring = FloatRing()
        db = Database(ring=ring)
        db.create("R", ("Y", "X"))
        db.create("S", ("Y", "Z"))
        q = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        engine = ViewTreeEngine(q, db)
        rng = random.Random(1)
        for _ in range(200):
            relation = rng.choice(["R", "S"])
            key = (rng.randrange(6), rng.randrange(6))
            engine.apply(Update(relation, key, round(rng.uniform(0.1, 2.0), 3)))
        got = dict(engine.enumerate())
        expected = evaluate(q, db).to_dict()
        assert set(got) == set(expected)
        for key, value in got.items():
            assert value == pytest.approx(expected[key])


class TestMinPlusStatic:
    def test_two_hop_shortest_path(self):
        """Tropical semiring: the join computes path lengths, the
        projection takes the minimum — static evaluation only (no
        additive inverse), exactly the §2/§4.6 boundary."""
        db = Database(ring=MIN_PLUS)
        e1 = db.create("E1", ("src", "mid"))
        e2 = db.create("E2", ("mid", "dst"))
        e1.add(("a", "b"), 3.0)
        e1.add(("a", "c"), 1.0)
        e2.add(("b", "d"), 1.0)
        e2.add(("c", "d"), 5.0)
        q = parse_query("Q(src, dst) = E1(src, mid) * E2(mid, dst)")
        out = evaluate(q, db)
        assert out.get(("a", "d")) == 4.0  # min(3+1, 1+5)
