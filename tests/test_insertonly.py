"""Insert-only maintenance (Section 4.6): monotone activation engine."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Database, Update, counting
from repro.insertonly import InsertOnlyEngine
from repro.naive import evaluate
from repro.query import parse_query

PATH3 = parse_query("Qp(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)")


def replay(query, schemas, inserts):
    """Run the engine and a naive oracle over the same insert stream."""
    engine = InsertOnlyEngine(query)
    db = Database()
    for name, arity in schemas.items():
        db.create(name, tuple(f"v{i}" for i in range(arity)))
    for name, key in inserts:
        engine.insert(name, key)
        db[name].set(key, 1)
    return engine, db


class TestBasics:
    def test_rejects_cyclic(self):
        with pytest.raises(ValueError):
            InsertOnlyEngine(parse_query("Q() = R(A,B)*S(B,C)*T(C,A)"))

    def test_rejects_self_join(self):
        with pytest.raises(ValueError):
            InsertOnlyEngine(parse_query("Q(A,B,C) = E(A,B) * E(B,C)"))

    def test_rejects_delete(self):
        engine = InsertOnlyEngine(PATH3)
        with pytest.raises(ValueError):
            engine.apply(Update("R", (1, 2), -1))

    def test_unknown_relation(self):
        engine = InsertOnlyEngine(PATH3)
        with pytest.raises(KeyError):
            engine.insert("X", (1,))

    def test_duplicate_insert_ignored(self):
        engine = InsertOnlyEngine(PATH3)
        engine.insert("R", (1, 2))
        engine.insert("R", (1, 2))
        assert engine.alive_count("R") <= 1

    def test_empty_join(self):
        engine = InsertOnlyEngine(PATH3)
        engine.insert("R", (1, 2))
        assert not engine.is_nonempty()
        assert list(engine.enumerate()) == []

    def test_single_path(self):
        engine = InsertOnlyEngine(PATH3)
        engine.insert("R", (1, 2))
        engine.insert("S", (2, 3))
        engine.insert("T", (3, 4))
        assert engine.is_nonempty()
        assert list(engine.enumerate()) == [(1, 2, 3, 4)]

    def test_activation_on_late_leaf(self):
        """Inserting the missing leaf last activates the whole chain."""
        engine = InsertOnlyEngine(PATH3)
        engine.insert("R", (1, 2))
        engine.insert("T", (3, 4))
        assert not engine.is_nonempty()
        engine.insert("S", (2, 3))
        assert engine.is_nonempty()

    def test_disconnected_query(self):
        q = parse_query("Q(A, B) = R(A) * S(B)")
        engine = InsertOnlyEngine(q)
        engine.insert("R", (1,))
        assert not engine.is_nonempty()
        engine.insert("S", (2,))
        assert engine.is_nonempty()
        assert list(engine.enumerate()) == [(1, 2)]


class TestDifferential:
    @given(st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_path_join_matches_naive(self, seed):
        local = random.Random(seed)
        inserts = [
            (local.choice(["R", "S", "T"]), (local.randrange(5), local.randrange(5)))
            for _ in range(60)
        ]
        engine, db = replay(PATH3, {"R": 2, "S": 2, "T": 2}, inserts)
        got = sorted(engine.enumerate())
        expected = sorted(evaluate(PATH3, db).keys())
        assert got == expected

    def test_star_join(self, rng):
        q = parse_query("Q(A,B,C,D) = R(A,B) * S(A,C) * T(A,D)")
        inserts = [
            (rng.choice(["R", "S", "T"]), (rng.randrange(6), rng.randrange(6)))
            for _ in range(150)
        ]
        engine, db = replay(q, {"R": 2, "S": 2, "T": 2}, inserts)
        assert sorted(engine.enumerate()) == sorted(evaluate(q, db).keys())

    def test_interleaving_orders_agree(self, rng):
        inserts = [
            (rng.choice(["R", "S", "T"]), (rng.randrange(4), rng.randrange(4)))
            for _ in range(60)
        ]
        engine_a, _ = replay(PATH3, {"R": 2, "S": 2, "T": 2}, inserts)
        shuffled = list(inserts)
        rng.shuffle(shuffled)
        engine_b, _ = replay(PATH3, {"R": 2, "S": 2, "T": 2}, shuffled)
        assert sorted(engine_a.enumerate()) == sorted(engine_b.enumerate())


class TestAmortizedConstant:
    def test_total_work_linear_in_inserts(self):
        """Section 4.6: amortized O(1) per insert — total ops stay within
        a constant factor of the number of inserts, even on the path
        query, which under insert-delete could not achieve this."""
        per_insert = []
        for n in (500, 2000):
            engine = InsertOnlyEngine(PATH3)
            local = random.Random(1)
            with counting() as ops:
                for _ in range(n):
                    rel = local.choice(["R", "S", "T"])
                    engine.insert(
                        rel, (local.randrange(n // 10), local.randrange(n // 10))
                    )
            per_insert.append(ops.total() / n)
        # Amortized cost stays flat as N quadruples.
        assert per_insert[1] <= per_insert[0] * 2 + 5

    def test_worst_case_single_insert_can_be_large_but_amortizes(self):
        """One insert can activate many tuples at once; the point of the
        amortization is that this happens at most once per tuple."""
        engine = InsertOnlyEngine(PATH3)
        for i in range(200):
            engine.insert("R", (i, 0))
            engine.insert("T", (1, i))
        assert not engine.is_nonempty()
        with counting() as ops:
            engine.insert("S", (0, 1))  # activates all 200 R tuples
        first = ops.total()
        with counting() as ops:
            engine.insert("S", (0, 1))  # duplicate: free
        assert ops.total() < first
