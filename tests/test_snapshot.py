"""Epoch-based snapshot reads (`repro.viewtree.epoch` + engines).

The tentpole invariant under test: a snapshot read answers from the
last *published* epoch, bit-identically to a serialized read over the
same committed prefix — no matter which strategy or sharded executor
maintains the views, and no matter what maintenance work runs
concurrently with the read.
"""

import asyncio
import threading
import time

import pytest

from repro.core.engine import IVMEngine
from repro.data.database import Database
from repro.obs import MaintenanceStats
from repro.query.parser import parse_query
from repro.serve import AsyncIVMServer, update_stream
from repro.viewtree.engine import ViewTreeEngine


def fresh_engine(text, shards=1, shard_executor="thread", **kwargs):
    query = parse_query(text)
    db = Database()
    for atom in query.atoms:
        if atom.relation not in db:
            db.create(atom.relation, atom.variables)
    return query, IVMEngine(
        query, db, shards=shards, shard_executor=shard_executor, **kwargs
    )


def close_backend(engine):
    close = getattr(engine.backend, "close", None)
    if close is not None:
        close()


SNAPSHOT_CONFIGS = [
    # (query text, shards, executor, engine kwargs)
    ("Q(Y,X,Z) = R(Y,X) * S(Y,Z)", 1, "thread", {}),
    ("Q(A) = R(A,B) * S(B)", 1, "thread", {}),
    # Generic (non-compiled) enumeration path.
    ("Q(A) = R(A,B) * S(B)", 1, "thread", {"compile_enum": False}),
    ("Q(B,A) = R(B,A) * S(B)", 3, "serial", {}),
    ("Q(B,A) = R(B,A) * S(B)", 3, "thread", {}),
    # "process" defaults to ipc="delta": snapshots live worker-side,
    # addressed by the coordinator's epoch number over the pipe.
    ("Q(B,A) = R(B,A) * S(B)", 2, "process", {}),
    # The old ship-the-engine path, kept as the differential oracle.
    ("Q(B,A) = R(B,A) * S(B)", 2, "process", {"shard_ipc": "pickle-engine"}),
]


class TestEpochBasics:
    def test_publish_freezes_reads_until_next_publish(self):
        """Writes after a publish stay invisible to snapshot reads; the
        next publish makes them visible atomically."""
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")
        prefix = list(update_stream(query, 200, domain=6, seed=1))
        suffix = list(update_stream(query, 200, domain=6, seed=2))
        engine.apply_batch(prefix)
        engine.publish_epoch()
        frozen = sorted(engine.enumerate_snapshot())
        assert frozen == sorted(engine.enumerate())

        engine.apply_batch(suffix)
        # Live reads see the new state; snapshot reads do not, yet.
        assert sorted(engine.enumerate_snapshot()) == frozen
        live = sorted(engine.enumerate())
        assert live != frozen  # the suffix actually changed the output

        engine.publish_epoch()
        assert sorted(engine.enumerate_snapshot()) == live

    def test_epoch_number_advances(self):
        _, engine = fresh_engine("Q(A) = R(A,B) * S(B)")
        backend = engine.backend
        assert backend.epoch == 0
        engine.publish_epoch()
        engine.publish_epoch()
        assert backend.epoch == 2

    def test_first_snapshot_read_auto_publishes(self):
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")
        engine.apply_batch(list(update_stream(query, 100, domain=5, seed=3)))
        # No explicit publish: the read publishes epoch 1 itself.
        assert sorted(engine.enumerate_snapshot()) == sorted(engine.enumerate())
        assert engine.backend.epoch == 1

    def test_lookup_snapshot_matches_enumeration_and_validates(self):
        query, engine = fresh_engine("Q(Y,X,Z) = R(Y,X) * S(Y,Z)")
        engine.apply_batch(list(update_stream(query, 300, domain=6, seed=5)))
        engine.publish_epoch()
        expected = dict(engine.enumerate_snapshot())
        assert expected
        ring_zero = engine.database.ring.zero
        for key, payload in list(expected.items())[:8]:
            assert engine.lookup_snapshot(key) == payload
        assert engine.lookup_snapshot((99, 99, 99)) == ring_zero
        with pytest.raises(ValueError):
            engine.lookup_snapshot((1, 2))

    def test_scalar_snapshot_empty_head(self):
        query, engine = fresh_engine("Q() = R(A,B) * S(B)")
        engine.apply_batch(list(update_stream(query, 150, domain=5, seed=7)))
        engine.publish_epoch()
        frozen = engine.scalar_snapshot()
        assert frozen == engine.scalar()
        assert engine.lookup_snapshot(()) == frozen

    def test_cow_copies_are_counted_and_bounded(self):
        """Post-publish writes copy each touched bucket/table once per
        epoch — counted in the stats — and the frozen epoch still reads
        the pre-write payloads."""
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")
        stats = engine.attach_stats()
        engine.apply_batch(list(update_stream(query, 200, domain=6, seed=9)))
        engine.publish_epoch()
        frozen = sorted(engine.enumerate_snapshot())
        engine.apply_batch(list(update_stream(query, 200, domain=6, seed=10)))
        assert sorted(engine.enumerate_snapshot()) == frozen

        engine.publish_epoch()
        assert stats.epochs_published == 2
        # The second publish observed the copies the writes forced.
        assert stats.cow_tables_copied > 0
        assert stats.cow_buckets_copied > 0
        epochs = stats.to_dict()["epochs"]
        assert epochs["published"] == 2
        assert epochs["cow_tables_copied"] == stats.cow_tables_copied

    def test_unsupported_backend_raises_typeerror(self):
        # The triangle-count query plans onto a non-snapshot backend.
        query, engine = fresh_engine("Q() = R(A,B) * S(B,C) * T(C,A)")
        assert not engine.supports_snapshots
        with pytest.raises(TypeError, match="snapshot"):
            engine.publish_epoch()
        with pytest.raises(TypeError, match="snapshot"):
            engine.enumerate_snapshot()


class TestSnapshotDifferential:
    @pytest.mark.parametrize(
        "text,shards,executor,kwargs", SNAPSHOT_CONFIGS
    )
    def test_snapshot_bit_identical_to_serialized_prefix(
        self, text, shards, executor, kwargs
    ):
        """For every strategy/executor: a snapshot of the committed
        prefix equals a twin engine that only ever saw the prefix,
        bit-for-bit, even while the suffix has already been applied to
        the live views."""
        prefix_n, suffix_n, domain, seed = 300, 300, 8, 21
        query, engine = fresh_engine(
            text, shards=shards, shard_executor=executor, **kwargs
        )
        _, twin = fresh_engine(text, shards=1)
        prefix = list(update_stream(query, prefix_n, domain=domain, seed=seed))
        suffix = list(
            update_stream(query, suffix_n, domain=domain, seed=seed + 1)
        )
        try:
            engine.apply_batch(prefix)
            engine.publish_epoch()
            engine.apply_batch(suffix)  # uncommitted from the reader's view

            twin.apply_batch(prefix)
            expected = sorted(twin.enumerate())
            got = sorted(engine.enumerate_snapshot())
            assert got == expected
            ring_zero = engine.database.ring.zero
            expected_map = dict(expected)
            for key, payload in expected[:6]:
                assert engine.lookup_snapshot(key) == payload
            for key, _ in sorted(engine.enumerate())[:6]:
                assert (
                    engine.lookup_snapshot(key)
                    == expected_map.get(key, ring_zero)
                )

            # Publishing the suffix catches the snapshot up to live.
            engine.publish_epoch()
            assert sorted(engine.enumerate_snapshot()) == sorted(
                engine.enumerate()
            )
        finally:
            close_backend(engine)
            close_backend(twin)


class TestConcurrentReaders:
    @pytest.mark.parametrize("shards,executor", [(1, "thread"), (3, "thread")])
    def test_readers_see_precommit_epoch_during_slow_commit(
        self, shards, executor
    ):
        """While a commit is (artificially) stuck in flight, snapshot
        reads return the pre-commit epoch bit-identically and without
        waiting on the commit lock."""
        text = "Q(B,A) = R(B,A) * S(B)" if shards > 1 else "Q(A) = R(A,B) * S(B)"
        query, engine = fresh_engine(
            text, shards=shards, shard_executor=executor
        )
        _, twin = fresh_engine(text)
        prefill = list(update_stream(query, 400, domain=8, seed=31))
        burst = list(update_stream(query, 200, domain=8, seed=32))
        engine.apply_batch(prefill)
        twin.apply_batch(prefill)
        expected = sorted(twin.enumerate())

        release = threading.Event()
        inner_apply = engine.apply_batch

        def gated_apply(batch):
            release.wait(20.0)
            inner_apply(batch)

        engine.apply_batch = gated_apply

        async def run():
            stats = MaintenanceStats()
            server = AsyncIVMServer(
                engine, max_batch=len(burst), max_delay=0.0, stats=stats
            )
            assert server.snapshot_reads
            await server.start()
            for update in burst:
                await server.submit(update)
            await asyncio.sleep(0.05)  # the commit is now parked in apply
            start = time.perf_counter()
            during = sorted(await server.enumerate())
            hits = [await server.lookup(key) for key, _ in expected[:5]]
            elapsed = time.perf_counter() - start
            release.set()
            await server.drain()
            after = sorted(await server.enumerate())
            await server.stop()
            return during, hits, elapsed, after, stats

        try:
            during, hits, elapsed, after, stats = asyncio.run(run())
        finally:
            close_backend(engine)
            close_backend(twin)

        assert during == expected  # pre-commit epoch, bit-identical
        assert hits == [payload for _, payload in expected[:5]]
        assert elapsed < 10.0  # never waited out the gated commit
        # After the commit lands the published epoch includes the burst.
        serial_query, serial = fresh_engine(text)
        try:
            serial.apply_batch(prefill + burst)
            assert after == sorted(serial.enumerate())
        finally:
            close_backend(serial)
        assert stats.snapshot_reads >= 7
        assert stats.epochs_published >= 1
        assert stats.read_staleness.count == 5
        # Reads during the stuck commit aged at least the park time.
        assert stats.read_staleness.stat.maximum >= 0.01


class TestServerFallback:
    def test_lock_mode_on_unsupported_backend(self):
        query, engine = fresh_engine("Q() = R(A,B) * S(B,C) * T(C,A)")
        assert not engine.supports_snapshots

        async def run():
            with pytest.raises(ValueError, match="snapshot"):
                AsyncIVMServer(engine, snapshot_reads=True)
            stats = MaintenanceStats()
            async with AsyncIVMServer(
                engine, max_batch=16, max_delay=0.001, stats=stats
            ) as server:
                assert not server.snapshot_reads
                for update in update_stream(query, 150, domain=5, seed=41):
                    await server.submit(update)
                await server.drain()
                served = await server.scalar()
            return served, stats

        served, stats = asyncio.run(run())
        assert served == engine.scalar()
        assert stats.snapshot_reads == 0

    def test_explicit_opt_out_takes_the_lock_path(self):
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")

        async def run():
            stats = MaintenanceStats()
            async with AsyncIVMServer(
                engine,
                max_batch=16,
                max_delay=0.001,
                snapshot_reads=False,
                stats=stats,
            ) as server:
                assert not server.snapshot_reads
                for update in update_stream(query, 150, domain=5, seed=43):
                    await server.submit(update)
                await server.drain()
                served = sorted(await server.enumerate())
            return served, stats

        served, stats = asyncio.run(run())
        assert served == sorted(engine.enumerate())
        assert stats.snapshot_reads == 0
        assert stats.epochs_published == 0

    def test_snapshot_mode_records_epoch_metrics(self):
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")

        async def run():
            stats = MaintenanceStats()
            async with AsyncIVMServer(
                engine, max_batch=16, max_delay=0.001, stats=stats
            ) as server:
                assert server.snapshot_reads
                for update in update_stream(query, 200, domain=6, seed=47):
                    await server.submit(update)
                await server.drain()
                hits = [await server.lookup((a,)) for a in range(4)]
                await server.enumerate()
            return hits, stats

        hits, stats = asyncio.run(run())
        expected = dict(engine.enumerate())
        ring_zero = engine.database.ring.zero
        assert hits == [expected.get((a,), ring_zero) for a in range(4)]
        # start() published the initial epoch; each commit one more.
        assert stats.epochs_published == stats.commits + 1
        assert stats.snapshot_reads == 5  # 4 lookups + 1 enumerate
        assert stats.snapshot_read_latency.count == 5
        assert stats.serve_lookups == 4
        d = stats.to_dict()
        assert d["epochs"]["published"] == stats.epochs_published
        assert d["epochs"]["snapshot_reads"] == 5
        assert d["epochs"]["read_latency"]["count"] == 5
