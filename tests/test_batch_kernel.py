"""Batch-compiled delta kernels (coalesce + DeltaPlan.push_batch).

The batch path must be *semantically invisible*: for any valid update
stream sliced into batches, the batch-kernel engine's views, scalars and
enumerations are bit-identical to the per-tuple compiled path's — which
is itself differential-tested against the generic interpreter and naive
recomputation.  On top of equivalence, these tests pin the batch-only
machinery: ring coalescing (cancellation, ordering), fused
``Relation.add_delta`` writes with index maintenance, probe-sharing and
coalescing observability counters, the ``apply_batch`` heuristic tiers,
the Fig. 4 strategy surface, and the sharded executors (the process pool
runs ``push_batch`` on unpickled plans).
"""

from __future__ import annotations

import bisect
import itertools
import random

import pytest

from repro.data import Database, Update
from repro.data.update import coalesce, coalesce_grouped
from repro.naive import evaluate
from repro.query import parse_query, search_order
from repro.rings import B, CovarianceRing, LiftingMap, Z, moment_lifting
from repro.shard import ShardedEngine
from repro.viewtree import ViewTreeEngine
from repro.viewtree.strategies import STRATEGIES, make_strategy

from tests.conftest import valid_stream


def seeded_db(schemas, rng, rows=60, domain=8, ring=Z):
    db = Database(ring=ring)
    for name, schema in schemas:
        relation = db.create(name, schema)
        for _ in range(rows):
            key = tuple(rng.randrange(domain) for _ in schema)
            relation.add(key, ring.one)
    return db


def batched(engine, stream, batch_size, **kwargs):
    for start in range(0, len(stream), batch_size):
        engine.apply_batch(stream[start : start + batch_size], **kwargs)


class TestCoalesce:
    def test_sums_and_drops_cancellations(self):
        batch = [
            Update("R", (1, 2), 1),
            Update("S", (7,), 3),
            Update("R", (1, 2), 2),
            Update("R", (4, 4), 1),
            Update("R", (4, 4), -1),
        ]
        result = coalesce(batch)
        assert result == [Update("R", (1, 2), 3), Update("S", (7,), 3)]

    def test_first_occurrence_order(self):
        batch = [
            Update("S", (1,), 1),
            Update("R", (0, 0), 1),
            Update("S", (2,), 1),
            Update("S", (1,), 1),
        ]
        assert [(u.relation, u.key) for u in coalesce(batch)] == [
            ("S", (1,)),
            ("R", (0, 0)),
            ("S", (2,)),
        ]

    def test_grouped_shape_and_empty_relations_absent(self):
        batch = [
            Update("R", (1,), 1),
            Update("R", (2,), 1),
            Update("S", (5,), 1),
            Update("S", (5,), -1),
        ]
        grouped = coalesce_grouped(batch)
        assert grouped == {"R": {(1,): 1, (2,): 1}}

    def test_boolean_semiring(self):
        """B coalesces with ``or`` — no inverses needed for dedup."""
        batch = [
            Update("R", (1,), True),
            Update("R", (1,), True),
            Update("R", (2,), False),
        ]
        assert coalesce(batch, B) == [Update("R", (1,), True)]

    def test_empty_batch(self):
        assert coalesce([]) == []
        assert coalesce_grouped([]) == {}


class TestAddDelta:
    def test_matches_sequential_add_with_indexes(self, rng):
        fused = Database().create("R", ("A", "B"))
        loop = Database().create("R", ("A", "B"))
        for relation in (fused, loop):
            local = random.Random(101)
            relation.index_on(("B",))
            for _ in range(40):
                relation.insert(local.randrange(5), local.randrange(5))
        entries = []
        for _ in range(60):
            key = (rng.randrange(5), rng.randrange(5))
            entries.append((key, rng.choice((-1, 1, 2))))
        fused.add_delta(list(entries))
        for key, payload in entries:
            loop.add(key, payload)
        assert fused.to_dict() == loop.to_dict()
        assert (
            fused.index_on(("B",)).groups == loop.index_on(("B",)).groups
        )

    def test_zero_payloads_skipped_and_write_count(self):
        relation = Database().create("R", ("A",))
        writes = relation.add_delta([((1,), 1), ((2,), 0), ((3,), 2)])
        assert writes == 2
        assert relation.to_dict() == {(1,): 1, (3,): 2}

    def test_cancellation_removes_index_postings(self):
        relation = Database().create("R", ("A", "B"))
        index = relation.index_on(("A",))
        relation.insert(1, 2)
        relation.add_delta([((1, 2), -1)])
        assert relation.to_dict() == {}
        assert not index.groups.get((1,))


QUERIES = [
    # q-hierarchical (Fig. 3): the Theorem 4.1 fast case.
    ("Q(Y, X, Z) = R(Y, X) * S(Y, Z)",
     [("R", ("Y", "X")), ("S", ("Y", "Z"))], False),
    # hierarchical but not q-hierarchical: searched free-top order.
    ("Q(A, C) = R(A, B) * S(B, C)",
     [("R", ("A", "B")), ("S", ("B", "C"))], True),
    # self-join: two anchors over one base relation.
    ("Q(A, B, C) = E(A, B) * E(B, C)",
     [("E", ("A", "B"))], True),
]


class TestBatchEquivalence:
    @pytest.mark.parametrize("text,schemas,searched", QUERIES)
    @pytest.mark.parametrize("batch_size", [2, 17, 64])
    def test_batch_matches_per_tuple_and_naive(
        self, text, schemas, searched, batch_size
    ):
        query = parse_query(text)
        order = search_order(query, require_free_top=True) if searched else None
        arities = {name: len(schema) for name, schema in schemas}
        stream = valid_stream(random.Random(23), arities, 300, domain=6)

        per_tuple = ViewTreeEngine(
            query, seeded_db(schemas, random.Random(17)), order
        )
        for update in stream:
            per_tuple.apply(update)
        batch_engine = ViewTreeEngine(
            query, seeded_db(schemas, random.Random(17)), order
        )
        batched(batch_engine, stream, batch_size)

        assert (
            batch_engine.output_relation().to_dict()
            == per_tuple.output_relation().to_dict()
        )
        assert sorted(batch_engine.enumerate()) == sorted(per_tuple.enumerate())
        assert batch_engine.output_relation() == evaluate(
            query, batch_engine.database
        )

    def test_permuted_batch_same_result(self):
        """Batches over a ring commute: reordering within a batch is
        invisible, so coalescing (which regroups) is sound."""
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        stream = valid_stream(random.Random(5), {"R": 2, "S": 2}, 200, domain=5)
        outputs = []
        for seed in (None, 1, 2):
            engine = ViewTreeEngine(query, seeded_db(schemas, random.Random(3)))
            shuffled = list(stream)
            if seed is not None:
                random.Random(seed).shuffle(shuffled)
            batched(engine, shuffled, 50)
            outputs.append(engine.output_relation().to_dict())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_zipf_skew_batches(self):
        """Hot join keys: repeated-key batches through the INDEXED probe
        mode, where probe sharing actually fires."""
        query = parse_query("Q(A, C) = R(A, B) * S(B, C)")
        order = search_order(query, require_free_top=True)
        schemas = [("R", ("A", "B")), ("S", ("B", "C"))]
        rng = random.Random(77)
        domain, s = 30, 1.3
        weights = list(
            itertools.accumulate(1.0 / (k + 1) ** s for k in range(domain))
        )

        def value():
            return min(
                bisect.bisect_left(weights, rng.random() * weights[-1]),
                domain - 1,
            )

        stream = []
        live = {"R": [], "S": []}
        for _ in range(400):
            name = rng.choice(("R", "S"))
            keys = live[name]
            if keys and rng.random() < 0.3:
                stream.append(
                    Update(name, keys.pop(rng.randrange(len(keys))), -1)
                )
            else:
                key = (value(), value())
                keys.append(key)
                stream.append(Update(name, key, 1))

        per_tuple = ViewTreeEngine(
            query, seeded_db(schemas, random.Random(41)), order
        )
        for update in stream:
            per_tuple.apply(update)
        batch_engine = ViewTreeEngine(
            query, seeded_db(schemas, random.Random(41)), order
        )
        batched(batch_engine, stream, 64)
        assert (
            batch_engine.output_relation().to_dict()
            == per_tuple.output_relation().to_dict()
        )
        assert batch_engine.output_relation() == evaluate(
            query, batch_engine.database
        )

    def test_boolean_semiring_batches(self):
        """B has no additive inverse, so drive an insert-only stream;
        coalescing must go through ``or``, not integer sums."""
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        rng = random.Random(37)
        stream = [
            Update(rng.choice(("R", "S")),
                   (rng.randrange(6), rng.randrange(6)), True)
            for _ in range(200)
        ]
        per_tuple = ViewTreeEngine(
            query, seeded_db(schemas, random.Random(29), ring=B)
        )
        for update in stream:
            per_tuple.apply(update)
        batch_engine = ViewTreeEngine(
            query, seeded_db(schemas, random.Random(29), ring=B)
        )
        batched(batch_engine, stream, 32)
        assert (
            batch_engine.output_relation().to_dict()
            == per_tuple.output_relation().to_dict()
        )

    def test_covariance_ring_batches(self):
        """Payloads without an exact zero test (``exact_zero=False``):
        the kernels must fall back to ``ring.is_zero``."""
        ring = CovarianceRing()
        assert not ring.exact_zero
        query = parse_query("Q(A) = R(A, V) * S(A)")
        lifting = LiftingMap(ring, {"V": moment_lifting("V")})

        def build():
            db = Database(ring=ring)
            db.create("R", ("A", "V"))
            db.create("S", ("A",))
            return db

        rng = random.Random(59)
        stream = []
        live = []
        for _ in range(250):
            if rng.random() < 0.6:
                if live and rng.random() < 0.3:
                    key = live.pop(rng.randrange(len(live)))
                    stream.append(Update("R", key, ring.neg(ring.one)))
                else:
                    key = (rng.randrange(5), rng.randrange(1, 9))
                    live.append(key)
                    stream.append(Update("R", key, ring.one))
            else:
                payload = ring.one if rng.random() < 0.75 else ring.neg(ring.one)
                stream.append(Update("S", (rng.randrange(5),), payload))

        per_tuple = ViewTreeEngine(query, build(), lifting=lifting)
        for update in stream:
            per_tuple.apply(update)
        batch_engine = ViewTreeEngine(query, build(), lifting=lifting)
        batched(batch_engine, stream, 40)
        assert (
            batch_engine.output_relation().to_dict()
            == per_tuple.output_relation().to_dict()
        )
        assert batch_engine.output_relation() == evaluate(
            query, batch_engine.database, lifting
        )


class TestBatchObservability:
    SCHEMAS = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
    QUERY = "Q(Y, X, Z) = R(Y, X) * S(Y, Z)"

    def test_full_cancellation_is_a_noop(self):
        """A deletes-heavy batch whose updates cancel pairwise coalesces
        to nothing: no pushes, no view writes, base unchanged."""
        engine = ViewTreeEngine(
            parse_query(self.QUERY), seeded_db(self.SCHEMAS, random.Random(3))
        )
        stats = engine.attach_stats()
        before_views = {
            node.variable: dict(node.view.data)
            for root in engine.roots
            for node in root.walk()
        }
        before_base = dict(engine.database["R"].data)
        inserts = [
            Update("R", (100 + i, i), 1) for i in range(20)
        ] + [Update("S", (100 + i, i), 1) for i in range(20)]
        batch = inserts + [u.inverted(Z) for u in inserts]
        engine.apply_batch(list(batch))
        assert stats.batch_updates_raw == len(batch)
        assert stats.batch_updates_coalesced == 0
        assert dict(engine.database["R"].data) == before_base
        after_views = {
            node.variable: dict(node.view.data)
            for root in engine.roots
            for node in root.walk()
        }
        assert after_views == before_views

    def test_coalesce_counters_accumulate(self):
        engine = ViewTreeEngine(
            parse_query(self.QUERY), seeded_db(self.SCHEMAS, random.Random(3))
        )
        stats = engine.attach_stats()
        batch = [Update("R", (1, 1), 1), Update("R", (1, 1), 1),
                 Update("S", (1, 2), 1)]
        engine.apply_batch(list(batch))
        assert stats.batch_updates_raw == 3
        assert stats.batch_updates_coalesced == 2
        payload = stats.to_dict()["batch"]
        assert payload["raw_updates"] == 3
        assert payload["coalesced_updates"] == 2
        assert "batch kernel" in stats.render()

    def test_probe_sharing_recorded_on_repeated_join_keys(self):
        """Hierarchical query: delta keys are wider than the sibling
        probe key, so a batch hammering one join key shares probes."""
        query = parse_query("Q(A, C) = R(A, B) * S(B, C)")
        order = search_order(query, require_free_top=True)
        schemas = [("R", ("A", "B")), ("S", ("B", "C"))]
        engine = ViewTreeEngine(
            query, seeded_db(schemas, random.Random(11)), order
        )
        stats = engine.attach_stats()
        batch = [Update("R", (a, 0), 1) for a in range(30)]
        engine.apply_batch(list(batch))
        assert stats.sibling_probes > 0
        assert stats.sibling_probes_shared > 0
        payload = stats.to_dict()["batch"]
        assert payload["probes_shared"] == stats.sibling_probes_shared

    def test_small_batches_skip_the_kernel(self):
        """Below ``batch_compile_threshold`` the per-tuple path runs and
        no batch counters are recorded."""
        engine = ViewTreeEngine(
            parse_query(self.QUERY), seeded_db(self.SCHEMAS, random.Random(3))
        )
        stats = engine.attach_stats()
        engine.apply_batch([Update("R", (1, 1), 1)])
        assert stats.batch_updates_raw == 0

    def test_uncompiled_engine_still_correct(self):
        query = parse_query(self.QUERY)
        stream = valid_stream(random.Random(9), {"R": 2, "S": 2}, 120, domain=5)
        engine = ViewTreeEngine(
            query,
            seeded_db(self.SCHEMAS, random.Random(3)),
            compile_plans=False,
        )
        batched(engine, stream, 30)
        assert engine.output_relation() == evaluate(query, engine.database)


class TestStrategiesBatch:
    def test_all_four_strategies_agree_under_batches(self):
        """Fig. 4 surface: apply_batch on every strategy, same output."""
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        stream = valid_stream(random.Random(7), {"R": 2, "S": 2}, 200, domain=6)
        outputs = {}
        for name in sorted(STRATEGIES):
            strategy = make_strategy(
                name, query, seeded_db(schemas, random.Random(13))
            )
            batched(strategy, stream, 40)
            outputs[name] = dict(strategy.enumerate())
        reference = outputs.pop("eager-fact")
        assert reference == evaluate(
            query, _replayed_db(schemas, stream)
        ).to_dict()
        for name, output in outputs.items():
            assert output == reference, name

    def test_eager_fact_batch_records_coalescing(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        strategy = make_strategy(
            "eager-fact", query, seeded_db(schemas, random.Random(13))
        )
        stats = strategy.attach_stats()
        strategy.apply_batch(
            [Update("R", (1, 1), 1), Update("R", (1, 1), 1)]
        )
        assert stats.batch_updates_raw == 2
        assert stats.batch_updates_coalesced == 1


def _replayed_db(schemas, stream):
    db = seeded_db(schemas, random.Random(13))
    for update in stream:
        db[update.relation].add(update.key, update.payload)
    return db


class TestShardedBatch:
    QUERY = "Q(B, A) = R(B, A) * S(B)"
    SCHEMAS = [("R", ("B", "A")), ("S", ("B",))]

    def _unsharded_output(self, stream):
        query = parse_query(self.QUERY)
        engine = ViewTreeEngine(
            query, seeded_db(self.SCHEMAS, random.Random(47), rows=25)
        )
        for update in stream:
            engine.apply(update)
        return engine.output_relation().to_dict()

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_sharded_batches_match_unsharded(self, executor):
        """The coordinator coalesces before splitting; the process pool
        additionally exercises ``push_batch`` on unpickled plans."""
        query = parse_query(self.QUERY)
        stream = valid_stream(random.Random(53), {"R": 2, "S": 1}, 150)
        expected = self._unsharded_output(stream)
        db = seeded_db(self.SCHEMAS, random.Random(47), rows=25)
        with ShardedEngine(
            query, db, shards=2, executor=executor, compile_plans=True
        ) as sharded:
            batched(sharded, stream, 50)
            assert sharded.output_relation().to_dict() == expected
            assert sharded.output_relation() == evaluate(query, db)
