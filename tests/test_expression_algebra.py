"""Deeper tests of the symbolic expression algebra (repro.delta.expression)
and its evaluation semantics against Section 2's operator definitions."""

import pytest

from repro.data import Database, Relation
from repro.delta import Aggregate, Join, Leaf, Union, aggregate_all, from_query
from repro.query import parse_query
from repro.rings import Z, LiftingMap, identity_lifting


def small_db():
    db = Database()
    r = db.create("R", ("A", "B"))
    s = db.create("S", ("B", "C"))
    r.add((1, 2), 2)
    r.add((1, 3), 1)
    s.add((2, 5), 3)
    s.add((3, 5), 1)
    return db


class TestSchemas:
    def test_join_schema_order(self):
        expr = Join(Leaf("R", ("A", "B")), Leaf("S", ("B", "C")))
        assert expr.schema() == ("A", "B", "C")

    def test_aggregate_schema(self):
        expr = Aggregate("B", Leaf("R", ("A", "B")))
        assert expr.schema() == ("A",)

    def test_aggregate_all_nests(self):
        expr = aggregate_all(["A", "B"], Leaf("R", ("A", "B")))
        assert expr.schema() == ()
        assert str(expr).startswith("SUM_B SUM_A")


class TestEvaluation:
    def test_join_multiplies_payloads(self):
        db = small_db()
        expr = Join(Leaf("R", ("A", "B")), Leaf("S", ("B", "C")))
        out = expr.evaluate(db)
        assert out.get((1, 2, 5)) == 6  # 2 * 3
        assert out.get((1, 3, 5)) == 1

    def test_union_adds_payloads(self):
        db = small_db()
        expr = Union(Leaf("R", ("A", "B")), Leaf("R", ("A", "B")))
        out = expr.evaluate(db)
        assert out.get((1, 2)) == 4

    def test_aggregation_with_lifting(self):
        db = small_db()
        expr = Aggregate("B", Leaf("R", ("A", "B")))
        lifting = LiftingMap(Z, {"B": identity_lifting(Z)})
        out = expr.evaluate(db, lifting=lifting)
        # SUM over B of multiplicity * B: 2*2 + 1*3 = 7.
        assert out.get((1,)) == 7

    def test_aggregation_default_counts(self):
        db = small_db()
        expr = Aggregate("B", Leaf("R", ("A", "B")))
        assert expr.evaluate(db).get((1,)) == 3

    def test_from_query_matches_naive(self):
        from repro.naive import evaluate

        db = small_db()
        q = parse_query("Q(A, C) = R(A, B) * S(B, C)")
        expr = from_query(q)
        assert expr.evaluate(db) == evaluate(q, db)

    def test_leaf_arity_mismatch(self):
        db = small_db()
        with pytest.raises(ValueError):
            Leaf("R", ("A",)).evaluate(db)

    def test_join_empty_side(self):
        db = small_db()
        db.create("Empty", ("B", "Z"))
        expr = Join(Leaf("R", ("A", "B")), Leaf("Empty", ("B", "Z")))
        assert len(expr.evaluate(db)) == 0


class TestDeltaAlgebraLaws:
    def test_delta_distributes_over_union(self):
        expr = Union(
            Join(Leaf("R", ("A",)), Leaf("S", ("A",))),
            Join(Leaf("R", ("A",)), Leaf("T", ("A",))),
        )
        delta = expr.delta("R")
        text = str(delta)
        assert text.count("dR") == 2

    def test_second_order_delta(self):
        """Delta of a delta: dR leaves are constants, so d(dV) w.r.t. the
        same relation keeps only the terms with a remaining plain R."""
        expr = Join(Leaf("R", ("A",)), Leaf("R", ("A",)))
        first = expr.delta("R")
        second = first.delta("R")
        assert second is not None
        assert "dR" in str(second)

    def test_delta_of_aggregate_join(self):
        q = parse_query("Q() = R(A, B) * S(B, C)")
        expr = from_query(q)
        delta = expr.delta("S")
        db = small_db()
        d_s = Relation("S", ("B", "C"), data={(2, 7): 1})
        value = delta.evaluate(db, deltas={"S": d_s})
        # New S-tuple (2,7) joins R's two copies of (1,2).
        assert value.get(()) == 2

    def test_delta_evaluation_equals_difference(self):
        """d(expr) evaluated on (db, dR) == expr(db + dR) - expr(db)."""
        from repro.naive import evaluate

        db = small_db()
        q = parse_query("Q(A, C) = R(A, B) * S(B, C)")
        expr = from_query(q)
        before = expr.evaluate(db)
        d_r = Relation("R", ("A", "B"), data={(1, 2): -1, (9, 2): 4})
        delta_value = expr.delta("R").evaluate(db, deltas={"R": d_r})
        db["R"].apply(d_r)
        after = expr.evaluate(db)
        reconstructed = Relation("x", before.schema, Z)
        reconstructed.apply(before)
        reconstructed.apply(delta_value)
        assert reconstructed == after
