"""Generated source kernels (repro.viewtree.codegen).

The codegen layer must be *semantically invisible*: for any valid update
stream, any ring (exact-zero and tolerance/structural alike), any
strategy, and any shard executor, an engine running generated kernels
produces bit-identical views, enumerations, and operation counters to
the same engine running the interpreted plans — which are themselves
differential-tested against naive recomputation.  Plus the satellites:
the plan-shape cache must key on ring identity (never on relation or
anchor names), kernels must survive pickling through process-pool
shards, `explain --kernel-source` must be deterministic, the columnar
coalescer must match `coalesce_grouped` exactly (numpy path included),
and the `repro.obs/1` payload must carry the codegen block.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.cli import main as cli_main
from repro.data import Database, Update
from repro.data.columnar import NUMPY_MIN_BATCH, coalesce_columnar
from repro.data.update import coalesce_grouped
from repro.obs import MaintenanceStats
from repro.query import parse_query
from repro.rings import (
    B,
    MIN_PLUS,
    PROVENANCE,
    CovarianceRing,
    LiftingMap,
    ProductRing,
    R,
    Z,
    moment_lifting,
)
from repro.rings.standard import FloatRing, IntegerRing
from repro.shard import ShardedEngine
from repro.viewtree import ViewTreeEngine, make_strategy
from repro.viewtree.codegen import (
    clear_shape_cache,
    compile_delta_kernel,
    compile_enum_kernel,
    new_codegen_info,
    ring_identity,
    shape_cache_size,
)

from tests.conftest import valid_stream


def seeded_db(schemas, rng, rows=60, domain=8, ring=Z):
    db = Database(ring=ring)
    for name, schema in schemas:
        relation = db.create(name, schema)
        for _ in range(rows):
            key = tuple(rng.randrange(domain) for _ in schema)
            relation.add(key, ring.one)
    return db


def twin_engines(query, schemas, seed, ring=Z, lifting=None, order=None):
    """A codegen engine and an interpreted engine, identically seeded."""
    generated = ViewTreeEngine(
        query, seeded_db(schemas, random.Random(seed), ring=ring),
        order, lifting, codegen=True,
    )
    interpreted = ViewTreeEngine(
        query, seeded_db(schemas, random.Random(seed), ring=ring),
        order, lifting, codegen=False,
    )
    assert generated.codegen and not interpreted.codegen
    return generated, interpreted


def ring_stream(rng, schemas, ring, count, deletes, domain=8):
    """A valid stream with ring-one payloads (negated for deletes)."""
    arities = {name: len(schema) for name, schema in schemas}
    stream = []
    for update in valid_stream(
        rng, arities, count, domain=domain,
        delete_prob=0.25 if deletes else 0.0,
    ):
        payload = ring.one if update.payload > 0 else ring.neg(ring.one)
        stream.append(Update(update.relation, update.key, payload))
    return stream


def assert_twins_agree(generated, interpreted, query):
    if query.head:
        assert list(generated.enumerate()) == list(interpreted.enumerate())
    else:
        assert generated.scalar() == interpreted.scalar()
    assert (
        generated.output_relation().to_dict()
        == interpreted.output_relation().to_dict()
    )


QUERIES = [
    # q-hierarchical: scalar straight-line push + compiled enumeration.
    ("Q(Y, X, Z) = R(Y, X) * S(Y, Z)",
     [("R", ("Y", "X")), ("S", ("Y", "Z"))]),
    # Three-relation chain with a non-leading anchor variable.
    ("Q(A, B) = R(A, B) * S(B, C) * T(B)",
     [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("B",))]),
    # Self-join: two anchors per relation, leaf updated between pushes.
    ("Q(A, B, C) = E(A, B) * E(B, C)", [("E", ("A", "B"))]),
    # Boolean triangle count: full-marginalization CROSS/INDEXED steps.
    ("Q() = R(A,B) * S(B,C) * T(C,A)",
     [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("C", "A"))]),
    # Single atom: no sibling joins at the anchor step.
    ("Q(A, B) = R(A, B)", [("R", ("A", "B"))]),
]


class TestDifferentialFuzz:
    @pytest.mark.parametrize("text,schemas", QUERIES)
    def test_mixed_stream_bit_identical(self, text, schemas):
        query = parse_query(text)
        generated, interpreted = twin_engines(query, schemas, seed=17)
        stream = ring_stream(random.Random(23), schemas, Z, 600, True)
        s_gen = generated.attach_stats()
        s_int = interpreted.attach_stats()
        # Interleave per-tuple pushes with batches of several sizes so
        # both the scalar push and the columnar push_batch paths run.
        cursor = 0
        for size in (1, 1, 7, 64, 128, 1, 200):
            chunk = stream[cursor:cursor + size]
            cursor += size
            if size == 1:
                for update in chunk:
                    generated.apply(update)
                    interpreted.apply(update)
            else:
                generated.apply_batch(chunk)
                interpreted.apply_batch(chunk)
        rest = stream[cursor:]
        generated.apply_batch(rest)
        interpreted.apply_batch(rest)
        assert_twins_agree(generated, interpreted, query)
        d_gen, d_int = s_gen.to_dict(), s_int.to_dict()
        # Operation accounting is part of bit-identity: same lookups,
        # matches, writes, probe sharing, and per-view delta sizes.
        for key in ("ops", "batch", "delta_sizes", "enumeration"):
            assert d_gen[key] == d_int[key], key
        assert d_gen["codegen"]["kernels_generated"] > 0
        assert d_int["codegen"]["kernels_generated"] == 0

    @pytest.mark.parametrize(
        "ring,deletes",
        [(Z, True), (R, True), (B, False), (MIN_PLUS, False),
         (PROVENANCE, False), (ProductRing(IntegerRing(), FloatRing()), True)],
        ids=["int", "float", "boolean", "min-plus", "provenance", "product"],
    )
    def test_ring_matrix(self, ring, deletes):
        # Non-exact-zero rings (R tolerance, PROVENANCE structural,
        # product-of-mixed) force the generated is_zero() paths; exotic
        # add/mul (min-plus) forces the method-call fallback over the
        # inlined operators.
        query = parse_query("Q(A, B) = R(A, B) * S(B, C) * T(B)")
        schemas = [("R", ("A", "B")), ("S", ("B", "C")), ("T", ("B",))]
        generated, interpreted = twin_engines(query, schemas, seed=29, ring=ring)
        stream = ring_stream(random.Random(31), schemas, ring, 300, deletes)
        for update in stream[:100]:
            generated.apply(update)
            interpreted.apply(update)
        generated.apply_batch(stream[100:])
        interpreted.apply_batch(stream[100:])
        assert_twins_agree(generated, interpreted, query)

    def test_analytics_ring_with_lifting(self):
        ring = CovarianceRing()
        query = parse_query("Q(A) = R(A, V) * S(A)")
        lifting = LiftingMap(ring, {"V": moment_lifting("V")})
        schemas = [("R", ("A", "V")), ("S", ("A",))]
        generated, interpreted = twin_engines(
            query, schemas, seed=37, ring=ring, lifting=lifting
        )
        rng = random.Random(41)
        live = []
        stream = []
        for _ in range(250):
            if rng.random() < 0.6:
                if live and rng.random() < 0.3:
                    stream.append(
                        Update("R", live.pop(rng.randrange(len(live))),
                               ring.neg(ring.one))
                    )
                else:
                    key = (rng.randrange(5), rng.randrange(1, 9))
                    live.append(key)
                    stream.append(Update("R", key, ring.one))
            else:
                stream.append(
                    Update(
                        "S", (rng.randrange(5),),
                        ring.one if rng.random() < 0.75 else ring.neg(ring.one),
                    )
                )
        for update in stream[:80]:
            generated.apply(update)
            interpreted.apply(update)
        generated.apply_batch(stream[80:])
        interpreted.apply_batch(stream[80:])
        assert_twins_agree(generated, interpreted, query)

    @pytest.mark.parametrize("text,schemas", QUERIES[:2])
    def test_prebound_enumeration_identical(self, text, schemas):
        query = parse_query(text)
        generated, interpreted = twin_engines(query, schemas, seed=43)
        for update in ring_stream(random.Random(47), schemas, Z, 300, True):
            generated.apply(update)
            interpreted.apply(update)
        head = query.head
        for value in range(-1, 9):  # -1: guaranteed miss
            one = {head[0]: value}
            assert list(generated.enumerate(prebound=one)) == list(
                interpreted.enumerate(prebound=one)
            )
            everything = {v: (value + i) % 8 for i, v in enumerate(head)}
            assert list(generated.enumerate(prebound=everything)) == list(
                interpreted.enumerate(prebound=everything)
            )

    def test_snapshot_reads_identical(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        generated, interpreted = twin_engines(query, schemas, seed=53)
        stream = ring_stream(random.Random(59), schemas, Z, 400, True)
        for update in stream[:200]:
            generated.apply(update)
            interpreted.apply(update)
        generated.publish_epoch()
        interpreted.publish_epoch()
        # Mutate past the epoch: snapshot reads must see the frozen
        # state, live reads the current one — under generated kernels
        # exactly as under interpreted plans.
        generated.apply_batch(stream[200:])
        interpreted.apply_batch(stream[200:])
        assert list(generated.enumerate_snapshot()) == list(
            interpreted.enumerate_snapshot()
        )
        assert list(generated.enumerate()) == list(interpreted.enumerate())


class TestStrategies:
    @pytest.mark.parametrize(
        "name", ["eager-fact", "eager-list", "lazy-list", "lazy-fact"]
    )
    def test_strategy_parity(self, name):
        query = parse_query("Q(B, A) = R(B, A) * S(B)")
        schemas = [("R", ("B", "A")), ("S", ("B",))]
        with_codegen = make_strategy(
            name, query, seeded_db(schemas, random.Random(61)), codegen=True
        )
        without = make_strategy(
            name, query, seeded_db(schemas, random.Random(61)), codegen=False
        )
        for update in ring_stream(random.Random(67), schemas, Z, 200, True):
            with_codegen.apply(update)
            without.apply(update)
        assert sorted(with_codegen.enumerate()) == sorted(without.enumerate())


class TestSharded:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executor_parity(self, executor):
        query = parse_query("Q(B, A) = R(B, A) * S(B)")

        def fresh():
            db = Database()
            db.create("R", ("B", "A"))
            db.create("S", ("B",))
            rng = random.Random(71)
            for _ in range(20):
                db["R"].insert(rng.randrange(8), rng.randrange(8))
                db["S"].insert(rng.randrange(8))
            return db

        stream = valid_stream(random.Random(73), {"R": 2, "S": 1}, 150)
        count = 60 if executor == "process" else 150
        with ShardedEngine(
            query, fresh(), shards=2, executor=executor, codegen=True
        ) as generated, ShardedEngine(
            query, fresh(), shards=2, executor=executor, codegen=False
        ) as interpreted:
            assert generated.codegen and not interpreted.codegen
            generated.apply_batch(stream[:count])
            interpreted.apply_batch(stream[:count])
            generated.apply(Update("R", (1, 1), 1))
            interpreted.apply(Update("R", (1, 1), 1))
            assert dict(generated.enumerate()) == dict(interpreted.enumerate())


class TestPickling:
    def test_engine_round_trip_keeps_kernels(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        generated, interpreted = twin_engines(query, schemas, seed=79)
        stream = ring_stream(random.Random(83), schemas, Z, 300, True)
        for update in stream[:150]:
            generated.apply(update)
            interpreted.apply(update)
        clone = pickle.loads(pickle.dumps(generated))
        assert clone.codegen
        assert clone._enum_kernel is not None
        for update in stream[150:]:
            clone.apply(update)
            interpreted.apply(update)
        assert list(clone.enumerate()) == list(interpreted.enumerate())

    def test_kernel_reduce_regenerates_identical_source(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        engine, _ = twin_engines(query, schemas, seed=89)
        kernel = engine._kernels["R"][0]
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.source == kernel.source
        enum_clone = pickle.loads(pickle.dumps(engine._enum_kernel))
        assert enum_clone.source == engine._enum_kernel.source


class TestShapeCache:
    def test_same_shape_across_engines_compiles_once(self):
        clear_shape_cache()
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        first, _ = twin_engines(query, schemas, seed=97)
        size_after_first = shape_cache_size()
        second, _ = twin_engines(query, schemas, seed=101)
        assert shape_cache_size() == size_after_first
        info = second._codegen_info
        assert info is not None and info["cache_hits"] == info["kernels"]

    def test_cache_keys_on_ring_identity_not_names(self):
        # Two engines over the SAME query and relation names but
        # different rings must never share generated code: the float
        # ring's tolerance zero test and the integer ring's exact test
        # compile to different source.
        clear_shape_cache()
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        with_int, _ = twin_engines(query, schemas, seed=103, ring=Z)
        size_int = shape_cache_size()
        with_float, _ = twin_engines(query, schemas, seed=103, ring=R)
        assert shape_cache_size() > size_int
        assert (
            with_int._kernels["R"][0].source
            != with_float._kernels["R"][0].source
        )

    def test_ring_identity_separates_instance_state(self):
        assert ring_identity(Z) == ring_identity(IntegerRing())
        assert ring_identity(FloatRing()) == ring_identity(R)
        assert ring_identity(FloatRing(1e-6)) != ring_identity(R)
        assert ring_identity(Z) != ring_identity(R)
        assert ring_identity(
            ProductRing(IntegerRing(), IntegerRing())
        ) != ring_identity(ProductRing(IntegerRing(), FloatRing()))

    def test_fallback_counter_on_uncompilable_plan(self):
        # A plan object missing required attributes must fall back to the
        # interpreter and be counted, never crash engine construction.
        info = new_codegen_info()
        with pytest.raises(Exception):
            compile_delta_kernel(object(), info)
        with pytest.raises(Exception):
            compile_enum_kernel(object(), info)


class TestExplainCLI:
    def test_kernel_source_deterministic(self, capsys):
        args = [
            "explain", "Q(Y, X, Z) = R(Y, X) * S(Y, Z)", "--kernel-source"
        ]
        assert cli_main(args) == 0
        first = capsys.readouterr().out
        assert cli_main(args) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "-- delta kernel R[0] --" in first
        assert "-- delta kernel S[0] --" in first
        assert "-- enum kernel --" in first
        assert "def push(" in first
        assert "def push_batch(" in first
        assert "def iterate(" in first

    def test_plan_without_codegen_says_so(self, capsys):
        assert cli_main(
            ["explain", "Q() = R(A,B) * S(B,C) * T(C,A)", "--insert-only",
             "--kernel-source"]
        ) == 0
        out = capsys.readouterr().out
        # Triangle count routes to IVM^eps: no codegen in that plan.
        assert "no generated kernels" in out


class TestObsBlock:
    def test_codegen_block_and_render(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        engine, _ = twin_engines(query, schemas, seed=107)
        stats = engine.attach_stats()
        payload = stats.to_dict()["codegen"]
        assert payload["kernels_generated"] == 3  # 2 delta + 1 enum
        assert payload["codegen_time_ms"] >= 0.0
        assert payload["fallbacks"] == 0
        assert "codegen:" in stats.render()

    def test_reattach_does_not_double_count(self):
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        schemas = [("R", ("Y", "X")), ("S", ("Y", "Z"))]
        engine, _ = twin_engines(query, schemas, seed=109)
        first = engine.attach_stats()
        generated = first.to_dict()["codegen"]["kernels_generated"]
        assert generated > 0
        engine.detach_stats()
        second = engine.attach_stats()
        assert second.to_dict()["codegen"]["kernels_generated"] == 0

    def test_shard_merge_rolls_up_codegen(self):
        query = parse_query("Q(B, A) = R(B, A) * S(B)")
        db = Database()
        db.create("R", ("B", "A"))
        db.create("S", ("B",))
        with ShardedEngine(query, db, shards=2, executor="serial") as engine:
            engine.apply_batch(
                valid_stream(random.Random(113), {"R": 2, "S": 1}, 80)
            )
            merged = engine.merged_stats()
        payload = merged.to_dict()["codegen"]
        assert payload["kernels_generated"] > 0
        for summary in merged.to_dict()["shards"].values():
            assert "kernels_generated" in summary

    def test_merges_add_codegen_counts(self):
        shard = MaintenanceStats()
        shard.record_codegen(3, 1.5, 2, 1)
        left = MaintenanceStats()
        right = MaintenanceStats()
        left.merge(shard, label="shard0")
        right.merge(shard, label="shard0")
        assert left.kernels_generated == 3
        # Unlabelled coordinator-level merge: same-label summaries add
        # their count keys, top-level codegen totals add too.
        left.merge(right)
        assert left.kernels_generated == 6
        assert left.codegen_time_ms == 3.0
        assert left.shard_summaries["shard0"]["kernels_generated"] == 6
        assert left.shard_summaries["shard0"]["codegen_fallbacks"] == 2


class TestColumnarCoalesce:
    def make_batch(self, rng, count, payload):
        batch = []
        for _ in range(count):
            name = rng.choice(["R", "S"])
            key = (rng.randrange(6), rng.randrange(6))
            batch.append(Update(name, key, payload(rng)))
        return batch

    def assert_matches_grouped(self, batch, ring):
        columnar = coalesce_columnar(batch, ring)
        grouped = coalesce_grouped(batch, ring)
        assert list(columnar) == list(grouped)  # relation order
        for name, (keys, payloads) in columnar.items():
            assert keys == list(grouped[name])  # key order
            assert payloads == list(grouped[name].values())  # bit-identity

    def test_pure_python_path_matches_grouped(self):
        rng = random.Random(127)
        batch = self.make_batch(rng, 40, lambda r: r.choice([1, 2, -1]))
        self.assert_matches_grouped(batch, Z)

    def test_numpy_path_matches_grouped(self):
        rng = random.Random(131)
        batch = self.make_batch(
            rng, max(NUMPY_MIN_BATCH * 4, 300),
            lambda r: r.choice([0.5, 1.25, -0.5, -1.25, 3.0]),
        )
        assert len(batch) >= NUMPY_MIN_BATCH
        self.assert_matches_grouped(batch, R)

    def test_numpy_path_cancellation_filtered(self):
        # Keys whose payloads sum to (tolerance-band) zero must be
        # dropped by both paths.
        batch = []
        for i in range(NUMPY_MIN_BATCH):
            batch.append(Update("R", (i % 4, 0), 1.5))
            batch.append(Update("R", (i % 4, 0), -1.5))
        batch.append(Update("R", (9, 9), 2.0))
        columnar = coalesce_columnar(batch, R)
        assert columnar == {"R": ([(9, 9)], [2.0])}

    def test_small_numeric_batch_uses_python_path(self):
        batch = [Update("R", (1, 2), 0.5)] * (NUMPY_MIN_BATCH - 1)
        assert coalesce_columnar(batch, R) == {
            "R": ([(1, 2)], [0.5 * (NUMPY_MIN_BATCH - 1)])
        }
