"""CSV loading and dumping of relations."""

import pytest

from repro.data import (
    Relation,
    dump_relation_csv,
    load_relation_csv,
    relation_from_rows,
)


class TestLoad:
    def test_basic(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("1,2\n1,3\n1,2\n")
        relation = load_relation_csv(path, "R", ("A", "B"))
        assert relation.to_dict() == {(1, 2): 2, (1, 3): 1}

    def test_header_skipped(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("A,B\n1,2\n")
        relation = load_relation_csv(path, "R", ("A", "B"), has_header=True)
        assert relation.to_dict() == {(1, 2): 1}

    def test_payload_column(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("1,2,5\n1,3,-2\n")
        relation = load_relation_csv(
            path, "R", ("A", "B"), payload_column=True
        )
        assert relation.to_dict() == {(1, 2): 5, (1, 3): -2}

    def test_auto_conversion_mixed(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("zurich,42\n")
        relation = load_relation_csv(path, "R", ("city", "n"))
        assert relation.to_dict() == {("zurich", 42): 1}

    def test_explicit_converters(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("1.5,x\n")
        relation = load_relation_csv(
            path, "R", ("A", "B"), converters=(float, str)
        )
        assert relation.to_dict() == {(1.5, "x"): 1}

    def test_tsv(self, tmp_path):
        path = tmp_path / "r.tsv"
        path.write_text("1\t2\n")
        relation = load_relation_csv(path, "R", ("A", "B"), delimiter="\t")
        assert relation.to_dict() == {(1, 2): 1}

    def test_column_count_mismatch(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("1,2,3\n")
        with pytest.raises(ValueError, match="expected 2 columns"):
            load_relation_csv(path, "R", ("A", "B"))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("1,2\n\n3,4\n")
        relation = load_relation_csv(path, "R", ("A", "B"))
        assert len(relation) == 2

    def test_converter_arity_check(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("1,2\n")
        with pytest.raises(ValueError):
            load_relation_csv(path, "R", ("A", "B"), converters=(int,))


class TestDumpRoundTrip:
    def test_round_trip(self, tmp_path):
        relation = Relation("R", ("A", "B"), data={(1, 2): 3, (4, 5): 1})
        path = tmp_path / "out.csv"
        dump_relation_csv(relation, path)
        again = load_relation_csv(
            path, "R", ("A", "B"), has_header=True, payload_column=True
        )
        assert again == relation

    def test_no_header_no_payload(self, tmp_path):
        relation = Relation("R", ("A",), data={(1,): 2})
        path = tmp_path / "out.csv"
        dump_relation_csv(
            relation, path, write_header=False, write_payload=False
        )
        assert path.read_text().strip() == "1"

    def test_deterministic_order(self, tmp_path):
        relation = Relation("R", ("A",), data={(3,): 1, (1,): 1, (2,): 1})
        path_a = tmp_path / "a.csv"
        path_b = tmp_path / "b.csv"
        dump_relation_csv(relation, path_a)
        dump_relation_csv(relation, path_b)
        assert path_a.read_text() == path_b.read_text()


class TestFromRows:
    def test_rows(self):
        relation = relation_from_rows("R", ("A", "B"), [(1, 2), (1, 2), (3, 4)])
        assert relation.to_dict() == {(1, 2): 2, (3, 4): 1}
