"""Batch application with the rebuild crossover (propagate vs recompute)."""

from repro.data import Database, Update, counting
from repro.naive import evaluate, evaluate_scalar
from repro.query import parse_query
from repro.viewtree import ViewTreeEngine
from tests.conftest import valid_stream

QUERY = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")


def fresh_engine(rng, rows=150, **kwargs):
    db = Database()
    r = db.create("R", ("Y", "X"))
    s = db.create("S", ("Y", "Z"))
    for _ in range(rows):
        r.insert(rng.randrange(12), rng.randrange(12))
        s.insert(rng.randrange(12), rng.randrange(12))
    return ViewTreeEngine(QUERY, db, **kwargs), db


class TestRebuild:
    def test_rebuild_preserves_state(self, rng):
        engine, db = fresh_engine(rng)
        before = engine.output_relation()
        engine.rebuild()
        assert engine.output_relation() == before

    def test_rebuild_after_direct_leaf_edits(self, rng):
        engine, db = fresh_engine(rng)
        # Emulate a bulk load straight into the leaves.
        for root in engine.roots:
            for node in root.walk():
                for atom, leaf in node.leaves:
                    leaf.insert(0, 0)
                    db[atom.relation].insert(0, 0)
        engine.rebuild()
        assert engine.output_relation() == evaluate(QUERY, db)


class TestBatchApplication:
    def test_small_batch_propagates(self, rng):
        engine, db = fresh_engine(rng)
        batch = valid_stream(rng, {"R": 2, "S": 2}, 10, domain=12)
        engine.apply_batch(batch, rebuild_factor=2.0)
        assert engine.output_relation() == evaluate(QUERY, db)

    def test_large_batch_rebuilds(self, rng):
        engine, db = fresh_engine(rng, rows=20)
        batch = valid_stream(rng, {"R": 2, "S": 2}, 500, domain=12)
        engine.apply_batch(batch, rebuild_factor=0.5)
        assert engine.output_relation() == evaluate(QUERY, db)

    def test_equivalence_across_modes(self, rng):
        batch = valid_stream(rng, {"R": 2, "S": 2}, 200, domain=10)
        import random

        outputs = []
        for factor in (None, 0.01, 100.0):
            local = random.Random(1)
            engine, _db = fresh_engine(local)
            engine.apply_batch(batch, rebuild_factor=factor)
            outputs.append(engine.output_relation().to_dict())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_rebuild_cheaper_for_database_sized_batches(self, rng):
        """The motivation from the paper's opening paragraph, inverted:
        when the change is NOT small, recomputation beats *per-tuple*
        propagation — and the compiled batch kernel, which coalesces the
        3000 updates down to the ~144 distinct keys they touch, beats
        per-tuple propagation by an even wider margin."""
        import random

        local = random.Random(2)
        engine, _db = fresh_engine(local, rows=50, compile_plans=False)
        big_batch = [
            Update("R", (local.randrange(12), local.randrange(12)), 1)
            for _ in range(3000)
        ]
        with counting() as ops:
            engine.apply_batch(list(big_batch), rebuild_factor=None)
        per_tuple_cost = ops.total()

        local = random.Random(2)
        engine2, _db2 = fresh_engine(local, rows=50)
        with counting() as ops:
            engine2.apply_batch(list(big_batch), rebuild_factor=0.5)
        rebuild_cost = ops.total()

        local = random.Random(2)
        engine3, _db3 = fresh_engine(local, rows=50)
        with counting() as ops:
            engine3.apply_batch(list(big_batch), rebuild_factor=None)
        batch_kernel_cost = ops.total()

        assert rebuild_cost < per_tuple_cost
        assert batch_kernel_cost < per_tuple_cost
        assert engine.output_relation() == engine2.output_relation()
        assert engine.output_relation() == engine3.output_relation()

    def test_crossover_counts_each_relation_once(self, rng):
        """Regression: the heuristic summed every anchored leaf copy, so
        a self-join double-counted its base relation and the crossover
        fired at twice the batch size ``rebuild_factor`` promised."""
        class CountingRebuilds(ViewTreeEngine):
            def rebuild(self):
                self.rebuild_calls = getattr(self, "rebuild_calls", 0) + 1
                super().rebuild()

        query = parse_query("Q() = R(A, B) * R(B, C)")
        db = Database()
        r = db.create("R", ("A", "B"))
        for _ in range(30):
            r.insert(rng.randrange(6), rng.randrange(6))
        engine = CountingRebuilds(query, db)
        n = len(r)
        assert n > 5
        before = getattr(engine, "rebuild_calls", 0)
        # n < |batch| < 2n: rebuilds iff the relation is counted once.
        batch = [
            Update("R", (rng.randrange(6), rng.randrange(6)), 1)
            for _ in range(n + 5)
        ]
        engine.apply_batch(list(batch), rebuild_factor=1.0)
        after = getattr(engine, "rebuild_calls", 0)
        assert after == before + 1, "batch propagated instead of rebuilding"
        assert engine.scalar() == evaluate_scalar(query, db)
