"""The four Fig. 4 strategies: agreement and characteristic behaviour."""

import pytest

from repro.data import Database, Update, counting
from repro.naive import evaluate
from repro.query import parse_query
from repro.viewtree import (
    STRATEGIES,
    EagerFact,
    EagerList,
    LazyFact,
    LazyList,
    make_strategy,
)
from tests.conftest import valid_stream

QUERY = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
SCHEMAS = {"R": 2, "S": 2}


def fresh_db():
    db = Database()
    db.create("R", ("Y", "X"))
    db.create("S", ("Y", "Z"))
    return db


class TestAgreement:
    @pytest.mark.parametrize("name", sorted(STRATEGIES))
    def test_strategy_matches_naive(self, name, rng):
        db = fresh_db()
        strategy = make_strategy(name, QUERY, db)
        stream = valid_stream(rng, SCHEMAS, 250, domain=7)
        for i, update in enumerate(stream):
            strategy.apply(update)
            if i % 60 == 59:
                got = {}
                for key, payload in strategy.enumerate():
                    got[key] = got.get(key, 0) + payload
                assert got == evaluate(QUERY, db).to_dict(), name

    def test_all_four_agree(self, rng):
        stream = valid_stream(rng, SCHEMAS, 200, domain=6)
        outputs = []
        for name in sorted(STRATEGIES):
            db = fresh_db()
            strategy = make_strategy(name, QUERY, db)
            for update in stream:
                strategy.apply(update)
            outputs.append(dict(strategy.enumerate()))
        assert outputs[0] == outputs[1] == outputs[2] == outputs[3]

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_strategy("eager-magic", QUERY, fresh_db())


class TestCharacteristics:
    def test_lazy_defers_all_output_work(self, rng):
        db = fresh_db()
        strategy = LazyList(QUERY, db)
        with counting() as ops:
            for update in valid_stream(rng, SCHEMAS, 50, delete_prob=0.0):
                strategy.apply(update)
        assert ops.total() <= 60 * 3  # inputs only: O(1) per update

    def test_eager_fact_updates_cheaper_than_eager_list_on_fanout(self):
        """A single R-update touching many output tuples: eager-list pays
        per affected tuple, eager-fact pays O(1) — the Fig. 4 gap."""
        def loaded_db():
            db = fresh_db()
            for z in range(300):
                db["S"].insert(0, z)
            return db

        db_fact = loaded_db()
        fact = EagerFact(QUERY, db_fact)
        with counting() as ops:
            fact.apply(Update("R", (0, 1), 1))
        fact_cost = ops.total()

        db_list = loaded_db()
        lst = EagerList(QUERY, db_list)
        with counting() as ops:
            lst.apply(Update("R", (0, 1), 1))
        list_cost = ops.total()
        assert list_cost > 10 * fact_cost

    def test_enumeration_from_list_is_scan(self, rng):
        db = fresh_db()
        strategy = EagerList(QUERY, db)
        for update in valid_stream(rng, SCHEMAS, 100, delete_prob=0.0):
            strategy.apply(update)
        count = strategy.enumerate_count()
        with counting() as ops:
            strategy.enumerate_count()
        assert ops.total() <= count + 5  # one enum step per tuple

    def test_lazy_fact_rebuilds_only_when_dirty(self, rng):
        db = fresh_db()
        strategy = LazyFact(QUERY, db)
        for update in valid_stream(rng, SCHEMAS, 80, delete_prob=0.0):
            strategy.apply(update)
        strategy.enumerate_count()
        with counting() as ops:
            strategy.enumerate_count()  # no updates since: no rebuild
        second = ops.total()
        strategy.apply(Update("R", (0, 0), 1))
        with counting() as ops:
            strategy.enumerate_count()
        third = ops.total()
        assert third > second
