"""Integrity constraints: FDs (closure, reducts, engine) and PK-FK."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.constraints import (
    Dimension,
    FDEngine,
    FunctionalDependency,
    StarJoinCounter,
    closure,
    fd_guided_order,
    parse_fds,
    q_hierarchical_under_fds,
    sigma_reduct,
)
from repro.data import Database, Update, counting, permuted
from repro.naive import evaluate
from repro.query import is_q_hierarchical, parse_query


class TestFDBasics:
    def test_parse(self):
        fd = FunctionalDependency.parse("A, B -> C")
        assert fd.determinant == ("A", "B") and fd.dependent == "C"
        assert str(fd) == "A, B -> C"

    def test_parse_errors(self):
        with pytest.raises(ValueError):
            FunctionalDependency.parse("A B C")
        with pytest.raises(ValueError):
            FunctionalDependency.parse("-> C")

    def test_closure_chain(self):
        fds = parse_fds("A -> B", "B -> C", "C -> D")
        assert closure({"A"}, fds) == {"A", "B", "C", "D"}
        assert closure({"B"}, fds) == {"B", "C", "D"}

    def test_closure_multi_attribute(self):
        fds = parse_fds("A -> C", "B, C -> D")
        assert closure({"A", "B"}, fds) == {"A", "B", "C", "D"}
        assert closure({"A"}, fds) == {"A", "C"}

    def test_closure_no_fds(self):
        assert closure({"A"}, ()) == {"A"}


class TestSigmaReduct:
    QUERY = parse_query("Q(Z, Y, X, W) = R(X, W) * S(X, Y) * T(Y, Z)")
    FDS = parse_fds("X -> Y", "Y -> Z")

    def test_atom_extension(self):
        reduct = sigma_reduct(self.QUERY, self.FDS)
        assert set(reduct.atom_for_relation("R").variables) == {"X", "W", "Y", "Z"}
        assert set(reduct.atom_for_relation("S").variables) == {"X", "Y", "Z"}
        assert set(reduct.atom_for_relation("T").variables) == {"Y", "Z"}

    def test_restricted_to_query_variables(self):
        fds = parse_fds("X -> Q9")  # Q9 not in the query
        reduct = sigma_reduct(self.QUERY, fds)
        assert "Q9" not in reduct.variables()

    def test_q_hierarchical_under_fds(self):
        assert q_hierarchical_under_fds(self.QUERY, self.FDS)
        assert not q_hierarchical_under_fds(self.QUERY, ())

    def test_head_extension(self):
        q = parse_query("Q(X) = R(X, W) * S(X, Y)")
        reduct = sigma_reduct(q, parse_fds("X -> Y"))
        assert set(reduct.head) == {"X", "Y"}


def fd_satisfying_db(rng, x_domain=12, w_domain=20):
    """Data for Example 4.12 satisfying X -> Y and Y -> Z."""
    db = Database()
    r = db.create("R", ("X", "W"))
    s = db.create("S", ("X", "Y"))
    t = db.create("T", ("Y", "Z"))
    y_of = {x: rng.randrange(6) for x in range(x_domain)}
    z_of = {y: rng.randrange(6) for y in range(6)}
    for x, y in y_of.items():
        s.insert(x, y)
    for y, z in z_of.items():
        t.insert(y, z)
    for _ in range(150):
        r.insert(rng.randrange(x_domain), rng.randrange(w_domain))
    return db


class TestFDEngine:
    QUERY = parse_query("Q(Z, Y, X, W) = R(X, W) * S(X, Y) * T(Y, Z)")
    FDS = parse_fds("X -> Y", "Y -> Z")

    def test_order_reanchors_original_atoms(self):
        order = fd_guided_order(self.QUERY, self.FDS)
        anchored = [a for n in order.walk() for a in n.atoms]
        assert len(anchored) == 3
        assert {a.relation for a in anchored} == {"R", "S", "T"}

    def test_rejects_without_applicable_fds(self):
        with pytest.raises(ValueError):
            fd_guided_order(self.QUERY, ())

    def test_initial_output_matches(self, rng):
        db = fd_satisfying_db(rng)
        engine = FDEngine(self.QUERY, self.FDS, db)
        assert engine.output_relation() == evaluate(self.QUERY, db)

    def test_maintenance_matches(self, rng):
        db = fd_satisfying_db(rng)
        engine = FDEngine(self.QUERY, self.FDS, db)
        for _ in range(150):
            engine.apply(
                Update("R", (rng.randrange(12), rng.randrange(20)), rng.choice([1, 1, -1]))
            )
        assert engine.output_relation() == evaluate(self.QUERY, db)

    def test_constant_update_cost(self, rng):
        """Fig. 6's point: R-updates cost O(1) thanks to the FDs."""
        costs = []
        for x_domain in (50, 200):
            local_db = fd_satisfying_db(rng, x_domain=x_domain)
            engine = FDEngine(self.QUERY, self.FDS, local_db)
            with counting() as ops:
                for _ in range(20):
                    engine.apply(
                        Update("R", (rng.randrange(x_domain), rng.randrange(20)), 1)
                    )
            costs.append(ops.total() / 20)
        assert costs[1] <= costs[0] * 2 + 10

    def test_enumeration_projects_extended_head(self, rng):
        db = fd_satisfying_db(rng)
        engine = FDEngine(self.QUERY, self.FDS, db)
        for key, _payload in engine.enumerate():
            assert len(key) == 4  # original head (Z, Y, X, W)


class TestStarJoinCounter:
    def make_counter(self):
        return StarJoinCounter(
            "M",
            ("movie", "company", "note"),
            [Dimension("T", "movie"), Dimension("C", "company")],
        )

    def naive_count(self, facts, titles, companies):
        total = 0
        for (m, c, _note), payload in facts.items():
            total += payload * titles.get(m, 0) * companies.get(c, 0)
        return total

    def test_matches_naive_on_random_stream(self, rng):
        counter = self.make_counter()
        facts: dict[tuple, int] = {}
        titles: dict[int, int] = {}
        companies: dict[int, int] = {}
        for _ in range(400):
            roll = rng.random()
            if roll < 0.5:
                key = (rng.randrange(10), rng.randrange(8), rng.randrange(3))
                m = rng.choice([1, 1, -1])
                counter.apply(Update("M", key, m))
                facts[key] = facts.get(key, 0) + m
            elif roll < 0.75:
                movie = rng.randrange(10)
                m = rng.choice([1, -1])
                counter.apply(Update("T", (movie, "t"), m))
                titles[movie] = titles.get(movie, 0) + m
            else:
                company = rng.randrange(8)
                m = rng.choice([1, -1])
                counter.apply(Update("C", (company, "c"), m))
                companies[company] = companies.get(company, 0) + m
        assert counter.count == self.naive_count(facts, titles, companies)

    def test_order_invariance_of_valid_batches(self, rng):
        from repro.workloads import job_star_counter, valid_insert_batch

        batch = valid_insert_batch(6, 5, 40, seed=3, out_of_order=False)

        def run(updates):
            counter = job_star_counter()
            counter.apply_batch(updates)
            return counter.count, counter.is_consistent()

        base = run(batch)
        for seed in range(4):
            assert run(permuted(batch, seed)) == base
        assert base[1]  # consistent at the end

    def test_dangling_references_reported(self):
        counter = self.make_counter()
        counter.apply(Update("M", (1, 2, 0), 1))
        dangling = counter.dangling_references()
        assert dangling == {"T": {1}, "C": {2}}

    def test_dimension_key_validation(self):
        with pytest.raises(ValueError):
            StarJoinCounter("M", ("a",), [Dimension("D", "zzz")])

    def test_unknown_relation(self):
        with pytest.raises(KeyError):
            self.make_counter().apply(Update("X", (1,), 1))

    def test_delete_batch_restores_empty(self, rng):
        from repro.workloads import (
            job_star_counter,
            valid_delete_batch,
            valid_insert_batch,
        )

        counter = job_star_counter()
        counter.apply_batch(valid_insert_batch(5, 4, 30, seed=1))
        assert counter.count > 0
        counter.apply_batch(valid_delete_batch(counter, seed=2))
        assert counter.count == 0
        assert counter.is_consistent()
