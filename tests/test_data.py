"""Relations, group indexes, databases, updates: the Section 2 contract."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (
    Database,
    Relation,
    Schema,
    Update,
    apply_batch,
    batches_of,
    counting,
    delta_relation,
    insert,
    measure_ops,
    permuted,
)
from repro.rings import Z, ProductRing


class TestSchema:
    def test_basic(self):
        schema = Schema.of("A", "B", "C")
        assert len(schema) == 3
        assert "A" in schema and "D" not in schema
        assert schema.position("B") == 1
        assert schema.positions(("C", "A")) == (2, 0)

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            Schema(("A", "A"))

    def test_project(self):
        schema = Schema.of("A", "B", "C")
        assert schema.project((1, 2, 3), ("C", "A")) == (3, 1)

    def test_projector_identity_fast_path(self):
        schema = Schema.of("A", "B")
        project = schema.projector(("A", "B"))
        key = (1, 2)
        assert project(key) is key

    def test_set_operations(self):
        a = Schema.of("A", "B")
        b = Schema.of("B", "C")
        assert a.union(b).variables == ("A", "B", "C")
        assert a.intersect(b).variables == ("B",)
        assert a.without(("B",)).variables == ("A",)
        assert a.covers(("A",)) and not a.covers(("C",))

    def test_equality_hash(self):
        assert Schema.of("A", "B") == Schema.of("A", "B")
        assert Schema.of("A", "B") != Schema.of("B", "A")
        assert hash(Schema.of("A")) == hash(Schema.of("A"))


class TestRelation:
    def test_insert_lookup_delete(self):
        rel = Relation("R", ("A", "B"))
        rel.insert(1, 2)
        assert rel.get((1, 2)) == 1
        assert len(rel) == 1
        rel.delete(1, 2)
        assert rel.get((1, 2)) == 0
        assert len(rel) == 0
        assert (1, 2) not in rel

    def test_multiplicity_accumulates(self):
        rel = Relation("R", ("A",))
        rel.insert(1, payload=3)
        rel.insert(1, payload=2)
        assert rel.get((1,)) == 5

    def test_zero_payload_entries_removed(self):
        rel = Relation("R", ("A",))
        rel.add((1,), 2)
        rel.add((1,), -2)
        assert len(rel) == 0
        assert list(rel.items()) == []

    def test_add_zero_is_noop(self):
        rel = Relation("R", ("A",))
        rel.add((1,), 0)
        assert len(rel) == 0

    def test_set_overwrites(self):
        rel = Relation("R", ("A",))
        rel.set((1,), 7)
        assert rel.get((1,)) == 7
        rel.set((1,), 0)
        assert len(rel) == 0

    def test_negative_multiplicity_allowed(self):
        # Out-of-order updates may transiently go negative (Section 2).
        rel = Relation("R", ("A",))
        rel.delete(1)
        assert rel.get((1,)) == -1
        rel.insert(1)
        assert len(rel) == 0

    def test_group_index(self):
        rel = Relation("R", ("A", "B"))
        rel.insert(1, 10)
        rel.insert(1, 20)
        rel.insert(2, 30)
        assert sorted(rel.group(("A",), (1,))) == [(1, 10), (1, 20)]
        assert rel.group_size(("A",), (1,)) == 2
        assert rel.group_size(("A",), (9,)) == 0
        assert sorted(rel.distinct(("A",))) == [(1,), (2,)]

    def test_index_maintained_under_updates(self):
        rel = Relation("R", ("A", "B"))
        rel.index_on(("A",))
        rel.insert(1, 10)
        rel.insert(1, 20)
        rel.delete(1, 10)
        assert list(rel.group(("A",), (1,))) == [(1, 20)]
        rel.delete(1, 20)
        assert rel.group_size(("A",), (1,)) == 0

    def test_index_on_unknown_variable(self):
        rel = Relation("R", ("A",))
        with pytest.raises(KeyError):
            rel.index_on(("Z",))

    def test_empty_group_vars_groups_everything(self):
        rel = Relation("R", ("A",))
        rel.insert(1)
        rel.insert(2)
        assert rel.group_size((), ()) == 2

    def test_project_onto(self):
        rel = Relation("R", ("A", "B"))
        rel.insert(1, 10)
        rel.insert(1, 20)
        projected = rel.project_onto(("A",))
        assert projected.get((1,)) == 2

    def test_scale(self):
        rel = Relation("R", ("A",), data={(1,): 2})
        assert rel.scale(3).get((1,)) == 6

    def test_copy_is_independent(self):
        rel = Relation("R", ("A",), data={(1,): 1})
        clone = rel.copy()
        clone.insert(2)
        assert len(rel) == 1 and len(clone) == 2

    def test_apply_delta(self):
        rel = Relation("R", ("A",), data={(1,): 1})
        delta = Relation("d", ("A",), data={(1,): -1, (2,): 5})
        rel.apply(delta)
        assert rel.to_dict() == {(2,): 5}

    def test_apply_self_doubles_payloads(self):
        # Regression: the delta used to be iterated lazily, so
        # rel.apply(rel) raised "dictionary changed size during iteration".
        rel = Relation("R", ("A", "B"), data={(1, 2): 3, (4, 5): -1})
        rel.apply(rel)
        assert rel.to_dict() == {(1, 2): 6, (4, 5): -2}

    def test_apply_accepts_plain_mapping(self):
        rel = Relation("R", ("A",), data={(1,): 1})
        rel.apply({(1,): 2, (3,): 4})
        assert rel.to_dict() == {(1,): 3, (3,): 4}

    def test_set_noop_counts_no_write(self):
        # Regression: a zero payload on an absent key used to bump the
        # "write" count, skewing complexity assertions.
        rel = Relation("R", ("A",), data={(1,): 1})
        with counting() as counter:
            rel.set((99,), 0)
        assert counter["write"] == 0
        with counting() as counter:
            rel.set((1,), 0)  # a real removal still counts
        assert counter["write"] == 1

    def test_pretty_renders(self):
        rel = Relation("R", ("A", "B"), data={(1, 2): 3})
        text = rel.pretty()
        assert "A B" in text and "1 2 | 3" in text

    def test_pretty_heterogeneous_key_types(self):
        # Regression: sorting mixed int/str keys raised TypeError
        # (int < str is unordered); pretty() must render regardless.
        rel = Relation("R", ("A", "B"), data={(1, "x"): 1, ("a", 2): 2})
        text = rel.pretty()
        assert "1 x | 1" in text and "a 2 | 2" in text

    def test_copy_carries_group_indexes(self):
        # Regression: copy() used to drop the group indexes, so the
        # clone silently repaid an O(n) rebuild on its next group().
        rel = Relation("R", ("A", "B"), data={(1, 2): 1, (1, 3): 1, (2, 4): 1})
        rel.index_on(("A",))
        clone = rel.copy()
        assert ("A",) in clone._indexes
        # The carried index stays incrementally maintained on the clone
        clone.insert(1, 9)
        assert sorted(clone.group(("A",), (1,))) == [(1, 2), (1, 3), (1, 9)]
        # ... and stays independent of the original's.
        assert sorted(rel.group(("A",), (1,))) == [(1, 2), (1, 3)]

    def test_copy_counts_writes(self):
        # Regression: copy() bumped no op counters, so COUNTER-based
        # complexity assertions saw copies as free.
        rel = Relation("R", ("A", "B"), data={(1, 2): 1, (1, 3): 1, (2, 4): 1})
        rel.index_on(("A",))
        with counting() as counter:
            rel.copy()
        # one write per tuple plus one posting per (index, tuple) pair
        assert counter["write"] == 2 * len(rel.data)

    def test_product_ring_payloads(self):
        ring = ProductRing(Z, Z)
        rel = Relation("R", ("A",), ring)
        rel.add((1,), (1, 10))
        rel.add((1,), (1, 5))
        assert rel.get((1,)) == (2, 15)
        rel.add((1,), (-2, -15))
        assert len(rel) == 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(-2, 2)),
            max_size=60,
        )
    )
    @settings(max_examples=60)
    def test_matches_reference_counter(self, ops):
        """Random insert/delete streams agree with a plain dict oracle,
        and the group index stays consistent throughout."""
        rel = Relation("R", ("A", "B"))
        rel.index_on(("A",))
        oracle: dict[tuple, int] = {}
        for a, b, m in ops:
            if m == 0:
                continue
            rel.add((a, b), m)
            oracle[(a, b)] = oracle.get((a, b), 0) + m
            if oracle[(a, b)] == 0:
                del oracle[(a, b)]
        assert rel.to_dict() == oracle
        for a in range(6):
            expected = sorted(k for k in oracle if k[0] == a)
            assert sorted(rel.group(("A",), (a,))) == expected


class TestOpCounter:
    def test_counts_only_when_enabled(self):
        rel = Relation("R", ("A",), data={(1,): 1})
        rel.get((1,))  # not counted
        with counting() as counter:
            rel.get((1,))
            rel.get((2,))
        assert counter["lookup"] == 2

    def test_measure_ops(self):
        rel = Relation("R", ("A",))
        ops = measure_ops(lambda: rel.insert(1))
        assert ops >= 1

    def test_nested_state_restored(self):
        from repro.data import COUNTER

        assert not COUNTER.enabled
        with counting():
            assert COUNTER.enabled
        assert not COUNTER.enabled

    def test_nested_counting_preserves_outer_counts(self):
        # Regression: entering a nested counting() block used to reset
        # the shared counter, destroying the outer block's counts.
        rel = Relation("R", ("A",), data={(1,): 1})
        with counting() as outer:
            rel.get((1,))
            with counting() as inner:
                rel.get((1,))
                rel.get((2,))
            assert inner["lookup"] == 2
            # Outer keeps its own count and absorbs the inner block's.
            assert outer["lookup"] == 3
            rel.get((1,))
        assert outer["lookup"] == 4
        assert inner["lookup"] == 2  # inner scope unchanged after exit

    def test_inner_scope_readable_after_exit(self):
        rel = Relation("R", ("A",), data={(1,): 1})
        with counting() as counter:
            rel.get((1,))
        assert counter.total() == 1


class TestDatabase:
    def test_create_and_size(self):
        db = Database()
        r = db.create("R", ("A",))
        r.insert(1)
        r.insert(2)
        s = db.create("S", ("B",))
        s.insert(1)
        assert len(db) == 3
        assert "R" in db and "X" not in db

    def test_duplicate_name_rejected(self):
        db = Database()
        db.create("R", ("A",))
        with pytest.raises(ValueError):
            db.create("R", ("B",))

    def test_ring_mismatch_rejected(self):
        db = Database()
        foreign = Relation("R", ("A",), ProductRing(Z, Z))
        with pytest.raises(ValueError):
            db.add_relation(foreign)

    def test_copy_independent(self):
        db = Database()
        db.create("R", ("A",)).insert(1)
        clone = db.copy()
        clone["R"].insert(2)
        assert len(db["R"]) == 1 and len(clone["R"]) == 2

    def test_insert_delete_helpers(self):
        db = Database()
        db.create("R", ("A",))
        db.insert("R", 1)
        assert db["R"].get((1,)) == 1
        db.delete("R", 1)
        assert len(db["R"]) == 0


class TestUpdates:
    def test_insert_delete_constructors(self):
        from repro.data import delete

        up = insert("R", 1, 2)
        assert up.key == (1, 2) and up.payload == 1 and up.is_insert
        down = delete("R", 1, 2)
        assert down.payload == -1 and not down.is_insert

    def test_inverted(self):
        up = Update("R", (1,), 3)
        assert up.inverted(Z) == Update("R", (1,), -3)

    def test_batches_of(self):
        updates = [Update("R", (i,), 1) for i in range(5)]
        batches = list(batches_of(updates, 2))
        assert [len(b) for b in batches] == [2, 2, 1]
        with pytest.raises(ValueError):
            list(batches_of(updates, 0))

    def test_delta_relation(self):
        delta = delta_relation("d", ("A",), [((1,), 1), ((1,), -1), ((2,), 3)])
        assert delta.to_dict() == {(2,): 3}

    @given(
        st.lists(
            st.tuples(st.sampled_from(["R", "S"]), st.integers(0, 4), st.integers(-2, 2)),
            max_size=40,
        ),
        st.integers(0, 1000),
    )
    @settings(max_examples=50)
    def test_batch_commutativity(self, raw, seed):
        """Section 2's optimization benefit: any permutation of a batch
        yields the same database."""
        batch = [Update(rel, (key,), m) for rel, key, m in raw if m != 0]

        def run(updates):
            db = Database()
            db.create("R", ("A",))
            db.create("S", ("A",))
            apply_batch(db, updates)
            return db["R"].to_dict(), db["S"].to_dict()

        assert run(batch) == run(permuted(batch, seed))
