"""Static vs dynamic relations: analysis and engine (Section 4.5)."""

import pytest

from repro.data import Database, Update, counting
from repro.naive import evaluate
from repro.query import canonical_order, parse_query
from repro.staticdyn import (
    StaticDynamicEngine,
    StaticRelationUpdateError,
    constant_update_atoms,
    enumerate_orders,
    find_static_dynamic_order,
    is_static_dynamic_tractable,
)
from tests.conftest import valid_stream

EX414 = parse_query("Q(A,B,C) = R(A,D) * S(A,B) * T@s(B,C)")


class TestAnalysis:
    def test_constant_atoms_for_q_hierarchical(self):
        q = parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)")
        order = canonical_order(q)
        assert constant_update_atoms(order) == set(q.atoms)

    def test_ex414_order_exists(self):
        order = find_static_dynamic_order(EX414)
        assert order is not None
        constant = constant_update_atoms(order)
        assert set(EX414.dynamic_atoms) <= constant

    def test_t_updates_not_constant_in_found_order(self):
        order = find_static_dynamic_order(EX414)
        t_atom = EX414.atom_for_relation("T")
        # The paper: "if we would allow updates to T as well, then one
        # such update would take linear time".
        assert t_atom not in constant_update_atoms(order)

    def test_enumerate_orders_all_valid(self):
        q = parse_query("Q(A,B) = R(A,B) * S(B)")
        orders = list(enumerate_orders(q, limit=100))
        assert orders
        for order in orders:
            assert order.is_free_top()
            assert {n.variable for n in order.walk()} == {"A", "B"}

    def test_tractability_trio(self):
        assert is_static_dynamic_tractable(EX414)
        q2 = parse_query("Q(A,C,D) = R(A,D) * S@s(A,B) * T@s(B,C) * U(D)")
        assert is_static_dynamic_tractable(q2)
        q3 = parse_query("Q(A,B) = R(A) * S@s(A,B) * T(B)")
        assert not is_static_dynamic_tractable(q3)

    def test_all_static_query_tractable(self):
        q = parse_query("Q(A,B,C) = R@s(A,B) * S@s(B,C)")
        assert is_static_dynamic_tractable(q)

    def test_all_dynamic_falls_back_to_q_hierarchy(self):
        q_good = parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)")
        assert is_static_dynamic_tractable(q_good)
        q_bad = parse_query("Q(A,B,C) = R(A,D) * S(A,B) * T(B,C)")
        assert not is_static_dynamic_tractable(q_bad)


class TestEngine:
    def make_db(self, rng):
        db = Database()
        db.create("R", ("A", "D"))
        db.create("S", ("A", "B"))
        t = db.create("T", ("B", "C"))
        for _ in range(120):
            t.insert(rng.randrange(8), rng.randrange(8))
        return db

    def test_static_updates_rejected(self, rng):
        engine = StaticDynamicEngine(EX414, self.make_db(rng))
        with pytest.raises(StaticRelationUpdateError):
            engine.apply(Update("T", (0, 0), 1))

    def test_differential(self, rng):
        db = self.make_db(rng)
        engine = StaticDynamicEngine(EX414, db)
        for update in valid_stream(rng, {"R": 2, "S": 2}, 250, domain=8):
            engine.apply(update)
        assert dict(engine.enumerate()) == evaluate(EX414, db).to_dict()

    def test_intractable_rejected(self):
        db = Database()
        for name, schema in [("R", ("A",)), ("S", ("A", "B")), ("T", ("B",))]:
            db.create(name, schema)
        q3 = parse_query("Q(A,B) = R(A) * S@s(A,B) * T(B)")
        with pytest.raises(ValueError):
            StaticDynamicEngine(q3, db)

    def test_dynamic_updates_are_constant_time(self, rng):
        """The Section 4.5 upper bound: O(1) per dynamic single-tuple
        update even as the static relation grows."""
        costs = []
        for t_rows in (100, 800):
            db = Database()
            db.create("R", ("A", "D"))
            db.create("S", ("A", "B"))
            t = db.create("T", ("B", "C"))
            for i in range(t_rows):
                t.insert(i % 20, i)
            engine = StaticDynamicEngine(EX414, db)
            with counting() as ops:
                for i in range(20):
                    engine.apply(Update("S", (i % 5, i % 20), 1))
                    engine.apply(Update("R", (i % 5, i), 1))
            costs.append(ops.total() / 40)
        assert costs[1] <= costs[0] * 2 + 10

    def test_second_ex414_query_preprocesses_static_join(self, rng):
        q2 = parse_query("Q(A,C,D) = R(A,D) * S@s(A,B) * T@s(B,C) * U(D)")
        db = Database()
        db.create("R", ("A", "D"))
        db.create("U", ("D",))
        s = db.create("S", ("A", "B"))
        t = db.create("T", ("B", "C"))
        for _ in range(60):
            s.insert(rng.randrange(6), rng.randrange(6))
            t.insert(rng.randrange(6), rng.randrange(6))
        engine = StaticDynamicEngine(q2, db)
        for update in valid_stream(rng, {"R": 2, "U": 1}, 150, domain=6):
            engine.apply(update)
        assert dict(engine.enumerate()) == evaluate(q2, db).to_dict()
