"""Every worked example of the paper as an executable check.

One test (or class) per figure/example: Fig. 2's tables, Example 3.2's
view, Section 3.3's skew-aware deltas, Section 3.4's OuMv table,
Example 4.4's view tree, Example 4.5's rewriting, Example 4.6's CQAPs,
Examples 4.10/4.12's FDs, Example 4.13's PK-FK amortization,
Example 4.14's static/dynamic trio, and Example 5.1's trade-off.
"""

import pytest

from repro.cascade import CascadeEngine
from repro.constraints import (
    FunctionalDependency,
    StarJoinCounter,
    parse_fds,
    q_hierarchical_under_fds,
    sigma_reduct,
)
from repro.cqap import is_tractable_cqap
from repro.data import Database, Relation, Update
from repro.delta import DeltaQueryEngine
from repro.ivme import TriangleCounter
from repro.lowerbounds import paper_example_instance, solve_oumv_via_ivm
from repro.naive import evaluate, evaluate_scalar
from repro.query import (
    canonical_order,
    is_hierarchical,
    is_q_hierarchical,
    parse_query,
    rewrite_using,
)
from repro.staticdyn import is_static_dynamic_tractable
from repro.viewtree import ViewTreeEngine
from tests.conftest import fig2_database

TRIANGLE = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")


class TestFig2Example31:
    """Fig. 2 / Example 3.1: the triangle database under dR."""

    def test_initial_join_output_has_three_tuples(self):
        db = fig2_database()
        join = parse_query("J(A,B,C) = R(A,B) * S(B,C) * T(C,A)")
        out = evaluate(join, db)
        assert len(out) == 3

    def test_join_multiplicity_is_product(self):
        # "the multiplicity of (a2, b1, c2) ... is the product of the
        # multiplicities of R(a2,b1), S(b1,c2), and T(c2,a2)".
        db = fig2_database()
        join = parse_query("J(A,B,C) = R(A,B) * S(B,C) * T(C,A)")
        out = evaluate(join, db)
        expected = (
            db["R"].get(("a2", "b1"))
            * db["S"].get(("b1", "c2"))
            * db["T"].get(("c2", "a2"))
        )
        assert out.get(("a2", "b1", "c2")) == expected == 6

    def test_delete_updates_r_to_one(self):
        # "(a2, b1) is now mapped to 3 - 2 = 1".
        db = fig2_database()
        engine = DeltaQueryEngine(TRIANGLE, db)
        engine.update(Update("R", ("a2", "b1"), -2))
        assert db["R"].get(("a2", "b1")) == 1

    def test_only_one_join_tuple_changes(self):
        db = fig2_database()
        join = parse_query("J(A,B,C) = R(A,B) * S(B,C) * T(C,A)")
        before = evaluate(join, db).to_dict()
        db["R"].add(("a2", "b1"), -2)
        after = evaluate(join, db).to_dict()
        changed = {k for k in before if before[k] != after.get(k, 0)}
        assert changed == {("a2", "b1", "c2")}

    def test_delta_equals_single_lookup_formula(self):
        # dQ = dR(a2,b1) * SUM_C S(b1,C) * T(C,a2)
        db = fig2_database()
        inner = sum(
            db["S"].get(("b1", c)) * db["T"].get((c, "a2"))
            for c in ("c1", "c2")
        )
        assert -2 * inner == -4
        engine = DeltaQueryEngine(TRIANGLE, db)
        engine.update(Update("R", ("a2", "b1"), -2))
        assert engine.scalar() == 9 - 4


class TestExample32MaterializedView:
    """Example 3.2: V_ST(B, A) = SUM_C S(B,C) * T(C,A)."""

    def test_view_contents(self):
        db = fig2_database()
        v_st = evaluate(parse_query("V(B, A) = S(B, C) * T(C, A)"), db)
        # dQ for dR(a2,b1) is one lookup into V_ST.
        assert v_st.get(("b1", "a2")) == 2
        assert -2 * v_st.get(("b1", "a2")) == -4

    def test_view_speeds_up_delta_r_but_not_delta_s(self):
        # The view answers dR in one lookup; dS must touch O(N) entries.
        db = fig2_database()
        v_st = evaluate(parse_query("V(B, A) = S(B, C) * T(C, A)"), db)
        # dS(b1, c2) -> delta view touches every A paired with c2 in T.
        affected = [key for key in db["T"].group(("C",), ("c2",))]
        assert len(affected) == 2  # (c2,a2) and (c2,a1)


class TestSection34OuMv:
    def test_paper_example_table(self):
        # The 3x3 worked example: u^T M v = 1, witnessed by
        # R(a,2), S(2,1), T(1,a).
        instance, expected = paper_example_instance()
        assert instance.solve_naive() == [expected]
        assert solve_oumv_via_ivm(instance) == [expected]

    def test_reduction_database_size(self):
        # The reduction constructs a database of size N = O(n^2).
        instance, _ = paper_example_instance()
        engine = TriangleCounter()
        answers = solve_oumv_via_ivm(instance, lambda: engine)
        assert answers == [True]
        assert engine.size() <= 4 * instance.n + instance.n**2


class TestExample44ViewTree:
    """Example 4.4 / Fig. 3: maintenance of Q(Y,X,Z) = R(Y,X) * S(Y,Z)."""

    QUERY = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")

    def make_db(self):
        db = Database()
        r = db.create("R", ("Y", "X"))
        s = db.create("S", ("Y", "Z"))
        for y in range(4):
            for x in range(3):
                r.insert(y, 10 + x)
            for z in range(2):
                s.insert(y, 20 + z)
        return db

    def test_view_tree_matches_fig3(self):
        engine = ViewTreeEngine(self.QUERY, self.make_db())
        root = engine.roots[0]
        assert root.variable == "Y"
        children = sorted(c.variable for c in root.children)
        assert children == ["X", "Z"]
        # V_R(Y) and V_S(Y) have schema (Y,), V_RS is over ().
        for child in root.children:
            assert child.view.schema.variables == ("Y",)

    def test_update_propagates_via_projection(self):
        # "dV_R projects away x from dR and dV_RS requires one lookup".
        db = self.make_db()
        engine = ViewTreeEngine(self.QUERY, db)
        x_node = next(c for c in engine.roots[0].children if c.variable == "X")
        before = x_node.view.get((0,))
        engine.apply(Update("R", (0, 99), 1))
        assert x_node.view.get((0,)) == before + 1

    def test_factorized_enumeration_matches_naive(self):
        db = self.make_db()
        engine = ViewTreeEngine(self.QUERY, db)
        assert engine.output_relation() == evaluate(self.QUERY, db)

    def test_payload_is_product_of_r_and_s(self):
        # "The payload of an output tuple (y,x,z) is the product of the
        # payloads of R(y,x) and S(y,z)."
        db = self.make_db()
        db["R"].add((0, 10), 2)  # multiplicity 3 now
        engine = ViewTreeEngine(self.QUERY, db)
        out = dict(engine.enumerate())
        assert out[(0, 10, 20)] == db["R"].get((0, 10)) * db["S"].get((0, 20))


class TestExample45Cascade:
    Q1 = parse_query("Q1(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)")
    Q2 = parse_query("Q2(A,B,C) = R(A,B) * S(B,C)")

    def test_rewriting_exists_and_is_q_hierarchical(self):
        rewriting = rewrite_using(self.Q1, self.Q2)
        assert rewriting is not None
        assert is_q_hierarchical(rewriting)
        assert not is_q_hierarchical(self.Q1)
        assert is_q_hierarchical(self.Q2)

    def test_rewriting_structure(self):
        rewriting = rewrite_using(self.Q1, self.Q2)
        relations = [a.relation for a in rewriting.atoms]
        assert relations == ["Q2", "T"]


class TestExample46CQAP:
    def test_triangle_detection_tractable(self):
        q = parse_query("Q(. | A, B, C) = E(A,B) * E(B,C) * E(C,A)")
        assert is_tractable_cqap(q)

    def test_edge_triangle_listing_not_tractable(self):
        q = parse_query("Q(C | A, B) = E(A,B) * E(B,C) * E(C,A)")
        assert not is_tractable_cqap(q)

    def test_lookup_join_tractable(self):
        q = parse_query("Q(A | B) = S(A,B) * T(B)")
        assert is_tractable_cqap(q)


class TestExample410RetailerFDs:
    def test_fd_makes_query_hierarchical(self):
        from repro.workloads import retailer_fd_query

        q, fds = retailer_fd_query()
        assert not is_hierarchical(q)
        assert is_hierarchical(sigma_reduct(q, fds))
        assert q_hierarchical_under_fds(q, fds)


class TestExample412FDViewTree:
    QUERY = parse_query("Q(Z, Y, X, W) = R(X, W) * S(X, Y) * T(Y, Z)")
    FDS = parse_fds("X -> Y", "Y -> Z")

    def test_not_hierarchical_without_fds(self):
        assert not is_hierarchical(self.QUERY)

    def test_reduct_is_q_hierarchical(self):
        reduct = sigma_reduct(self.QUERY, self.FDS)
        assert is_q_hierarchical(reduct)
        # R'(X, Y, Z, W): the closure extends R with Y and Z.
        r_atom = reduct.atom_for_relation("R")
        assert set(r_atom.variables) == {"X", "W", "Y", "Z"}

    def test_closure_example(self):
        # C_Sigma({A,B}) = {A,B,C,D} for A->C, BC->D (Section 4.4's text).
        from repro.constraints import closure

        fds = (
            FunctionalDependency(("A",), "C"),
            FunctionalDependency(("B", "C"), "D"),
        )
        assert closure({"A", "B"}, fds) == {"A", "B", "C", "D"}


class TestExample413PKFK:
    def test_amortized_insert_account(self):
        """n facts referencing a missing company each cost O(1); the one
        company insert that resolves them costs O(n)."""
        from repro.constraints import Dimension
        from repro.data import counting

        counter = StarJoinCounter(
            "M", ("movie", "company"), [Dimension("C", "company")]
        )
        for movie in range(50):
            counter.apply(Update("M", (movie, 7), 1))
        assert not counter.is_consistent()
        assert counter.count == 0
        with counting() as ops:
            counter.apply(Update("C", (7, "acme"), 1))
        expensive = ops.total()
        assert counter.count == 50
        assert counter.is_consistent()
        with counting() as ops:
            counter.apply(Update("M", (99, 7), 1))
        cheap = ops.total()
        assert expensive > 10 * cheap  # O(n) vs O(1)


class TestExample414StaticDynamic:
    def test_first_query(self):
        q = parse_query("Q(A,B,C) = R(A,D) * S(A,B) * T@s(B,C)")
        assert not is_q_hierarchical(
            parse_query("Q(A,B,C) = R(A,D) * S(A,B) * T(B,C)")
        )
        assert is_static_dynamic_tractable(q)

    def test_second_query(self):
        q = parse_query("Q(A,C,D) = R(A,D) * S@s(A,B) * T@s(B,C) * U(D)")
        assert is_static_dynamic_tractable(q)

    def test_third_query_beyond_view_trees(self):
        # Needs exponential preprocessing; out of scope for view trees.
        q = parse_query("Q(A,B) = R(A) * S@s(A,B) * T(B)")
        assert not is_static_dynamic_tractable(q)

    def test_all_dynamic_variant_intractable(self):
        q = parse_query("Q(A,B,C) = R(A,D) * S(A,B) * T(B,C)")
        assert not is_static_dynamic_tractable(q)


class TestExample51Tradeoff:
    QUERY = parse_query("Q(A) = R(A, B) * S(B)")

    def test_simplest_non_q_hierarchical(self):
        assert is_hierarchical(self.QUERY)
        assert not is_q_hierarchical(self.QUERY)

    def test_extremes_and_midpoint_agree_on_output(self, rng):
        from repro.ivme import TradeoffEngine

        db = Database()
        r = db.create("R", ("A", "B"))
        s = db.create("S", ("B",))
        updates = []
        for _ in range(300):
            if rng.random() < 0.7:
                updates.append(Update("R", (rng.randrange(20), rng.randrange(10)), 1))
            else:
                updates.append(Update("S", (rng.randrange(10),), rng.choice([1, -1])))
        results = []
        for eps in (0.0, 0.5, 1.0):
            engine = TradeoffEngine(epsilon=eps)
            for update in updates:
                engine.apply(update)
            results.append(engine.result().to_dict())
        assert results[0] == results[1] == results[2]
        for update in updates:
            db[update.relation].add(update.key, update.payload)
        assert results[0] == evaluate(self.QUERY, db).to_dict()
