"""The full-recompute evaluator: ground truth for everything else."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.data import Database, Relation
from repro.naive import evaluate, evaluate_scalar
from repro.naive.algebra import join_all, join_pair, marginalize, union_into
from repro.query import parse_query
from repro.rings import Z, LiftingMap, identity_lifting
from tests.conftest import fig2_database


class TestEvaluate:
    def test_triangle_count(self):
        db = fig2_database()
        q = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
        assert evaluate_scalar(q, db) == 9

    def test_join_output_multiplicities(self):
        db = fig2_database()
        q = parse_query("Q(A,B,C) = R(A,B) * S(B,C) * T(C,A)")
        out = evaluate(q, db)
        assert out.to_dict() == {
            ("a1", "b1", "c1"): 2,
            ("a1", "b1", "c2"): 1,
            ("a2", "b1", "c2"): 6,
        }

    def test_projection_groups(self):
        db = fig2_database()
        q = parse_query("Q(A) = R(A,B) * S(B,C) * T(C,A)")
        out = evaluate(q, db)
        assert out.to_dict() == {("a1",): 3, ("a2",): 6}

    def test_empty_result(self):
        db = Database()
        db.create("R", ("A",))
        db.create("S", ("A",))
        db["R"].insert(1)
        q = parse_query("Q(A) = R(A) * S(A)")
        assert len(evaluate(q, db)) == 0

    def test_cartesian_product(self):
        db = Database()
        db.create("R", ("A",)).insert(1)
        db.create("S", ("B",)).insert(2)
        q = parse_query("Q(A, B) = R(A) * S(B)")
        assert evaluate(q, db).to_dict() == {(1, 2): 1}

    def test_overrides_substitute_relation(self):
        db = fig2_database()
        delta = Relation("dR", ("A", "B"), data={("a2", "b1"): -2})
        q = parse_query("Q() = dR(A,B) * S(B,C) * T(C,A)")
        result = evaluate_scalar(q, db, overrides={"dR": delta})
        assert result == -4  # Example 3.1's delta

    def test_positional_rename(self):
        db = Database()
        rel = db.create("Edges", ("X", "Y"))
        rel.insert(1, 2)
        rel.insert(2, 3)
        q = parse_query("Q(A, C) = Edges(A, B) * Edges(B, C)")
        assert evaluate(q, db).to_dict() == {(1, 3): 1}

    def test_arity_mismatch_raises(self):
        db = Database()
        db.create("R", ("A", "B"))
        q = parse_query("Q(A) = R(A)")
        with pytest.raises(ValueError):
            evaluate(q, db)

    def test_lifting_sum_aggregate(self):
        db = Database()
        rel = db.create("R", ("A", "V"))
        rel.insert("x", 10)
        rel.insert("x", 32)
        q = parse_query("Q(A) = R(A, V)")
        lifting = LiftingMap(Z, {"V": identity_lifting(Z)})
        out = evaluate(q, db, lifting)
        assert out.get(("x",)) == 42

    def test_explicit_variable_order(self):
        db = fig2_database()
        q = parse_query("Q(A) = R(A,B) * S(B,C) * T(C,A)")
        out = evaluate(q, db, variable_order=["A", "C", "B"])
        assert out.to_dict() == {("a1",): 3, ("a2",): 6}
        with pytest.raises(ValueError):
            evaluate(q, db, variable_order=["A", "B"])

    def test_scalar_requires_boolean(self):
        db = fig2_database()
        q = parse_query("Q(A) = R(A,B) * S(B,C) * T(C,A)")
        with pytest.raises(ValueError):
            evaluate_scalar(q, db)

    def test_self_join(self):
        db = Database()
        e = db.create("E", ("X", "Y"))
        for edge in [(1, 2), (2, 3), (1, 3)]:
            e.insert(*edge)
        q = parse_query("Q(A, C) = E(A, B) * E(B, C)")
        assert evaluate(q, db).to_dict() == {(1, 3): 1}

    def test_multiplicities_multiply(self):
        db = Database()
        db.create("R", ("A",)).insert(1, payload=3)
        db.create("S", ("A",)).insert(1, payload=4)
        q = parse_query("Q(A) = R(A) * S(A)")
        assert evaluate(q, db).get((1,)) == 12


class TestAlgebra:
    def test_join_pair_natural(self):
        a = Relation("A", ("X", "Y"), data={(1, 2): 2})
        b = Relation("B", ("Y", "Z"), data={(2, 3): 5, (9, 9): 1})
        out = join_pair(a, b, Z)
        assert out.to_dict() == {(1, 2, 3): 10}
        assert out.schema.variables == ("X", "Y", "Z")

    def test_join_pair_no_shared(self):
        a = Relation("A", ("X",), data={(1,): 2})
        b = Relation("B", ("Y",), data={(5,): 3})
        out = join_pair(a, b, Z)
        assert out.to_dict() == {(1, 5): 6}

    def test_join_all_smallest_first(self):
        a = Relation("A", ("X",), data={(i,): 1 for i in range(5)})
        b = Relation("B", ("X",), data={(1,): 1})
        c = Relation("C", ("X",), data={(1,): 1, (2,): 1})
        out = join_all([a, b, c], Z)
        assert out.to_dict() == {(1,): 1}

    def test_join_all_single_copies(self):
        a = Relation("A", ("X",), data={(1,): 1})
        out = join_all([a], Z)
        out.insert(2)
        assert len(a) == 1  # original untouched

    def test_marginalize_count(self):
        rel = Relation("R", ("A", "B"), data={(1, 2): 2, (1, 3): 1})
        out = marginalize(rel, "B", Z)
        assert out.to_dict() == {(1,): 3}

    def test_marginalize_with_lifting(self):
        rel = Relation("R", ("A", "B"), data={(1, 10): 1, (1, 5): 2})
        out = marginalize(rel, "B", Z, lift=lambda b: b)
        assert out.get((1,)) == 20

    def test_union_into_projects(self):
        target = Relation("T", ("A", "B"), data={(1, 2): 1})
        source = Relation("S", ("B", "A"), data={(2, 1): 3})
        union_into(target, source)
        assert target.get((1, 2)) == 4

    def test_union_into_schema_mismatch(self):
        target = Relation("T", ("A",))
        source = Relation("S", ("B",))
        with pytest.raises(ValueError):
            union_into(target, source)


@st.composite
def small_instance(draw):
    r = draw(st.dictionaries(
        st.tuples(st.integers(0, 3), st.integers(0, 3)),
        st.integers(1, 3), max_size=8))
    s = draw(st.dictionaries(
        st.tuples(st.integers(0, 3), st.integers(0, 3)),
        st.integers(1, 3), max_size=8))
    return r, s


class TestAgainstBruteForce:
    @given(small_instance())
    @settings(max_examples=60, deadline=None)
    def test_two_way_join_matches_nested_loops(self, instance):
        r_data, s_data = instance
        db = Database()
        r = db.create("R", ("A", "B"))
        s = db.create("S", ("B", "C"))
        for key, payload in r_data.items():
            r.add(key, payload)
        for key, payload in s_data.items():
            s.add(key, payload)
        q = parse_query("Q(A, C) = R(A, B) * S(B, C)")
        expected: dict[tuple, int] = {}
        for (a, b), m1 in r_data.items():
            for (b2, c), m2 in s_data.items():
                if b == b2:
                    expected[(a, c)] = expected.get((a, c), 0) + m1 * m2
        expected = {k: v for k, v in expected.items() if v}
        assert evaluate(q, db).to_dict() == expected
