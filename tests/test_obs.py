"""The repro.obs observability layer: counters, recorders, hooks, export."""

import json
import math

import pytest

from repro.data import Database, Relation, Update
from repro.obs import (
    LatencyHistogram,
    MaintenanceStats,
    Observable,
    RunningStat,
    STATS_SCHEMA,
    StopWatch,
    observed,
    observed_enumeration,
    op_scope,
    stats_record,
    write_stats_json,
)
from repro.query.parser import parse_query


class TestOpScope:
    def test_measures_ops_and_time(self):
        rel = Relation("R", ("A",), data={(1,): 1})
        with op_scope("probe") as scope:
            rel.get((1,))
            rel.get((2,))
        assert scope["lookup"] == 2
        assert scope.total() == 2
        assert scope.seconds >= 0
        assert scope.to_dict()["ops_total"] == 2

    def test_nesting_composes(self):
        rel = Relation("R", ("A",), data={(1,): 1})
        with op_scope("outer") as outer:
            rel.get((1,))
            with op_scope("inner") as inner:
                rel.get((1,))
        assert inner.total() == 1
        assert outer.total() == 2


class TestStopWatch:
    def test_accumulates(self):
        watch = StopWatch()
        with watch.time("a"):
            pass
        with watch.time("a"):
            pass
        with watch.time("b"):
            pass
        assert watch.calls["a"] == 2
        assert watch.calls["b"] == 1
        assert watch.seconds("a") >= 0
        assert set(watch.to_dict()) == {"a", "b"}


class TestRunningStat:
    def test_basics(self):
        stat = RunningStat()
        for value in (1.0, 3.0, 2.0):
            stat.record(value)
        assert stat.count == 3
        assert stat.mean == pytest.approx(2.0)
        assert stat.minimum == 1.0
        assert stat.maximum == 3.0

    def test_empty_to_dict(self):
        assert RunningStat().to_dict()["count"] == 0

    def test_merge(self):
        a, b = RunningStat(), RunningStat()
        a.record(1.0)
        b.record(5.0)
        a.merge(b)
        assert a.count == 2 and a.maximum == 5.0


class TestLatencyHistogram:
    def test_percentiles_bracket_samples(self):
        histogram = LatencyHistogram()
        for _ in range(99):
            histogram.record(1e-5)
        histogram.record(1e-2)
        assert histogram.count == 100
        # p50 is within a factor of 2 of the mass at 1e-5.
        assert histogram.percentile(0.5) <= 2e-5
        assert histogram.percentile(0.995) >= 1e-2 / 2
        summary = histogram.to_dict()
        assert summary["count"] == 100
        assert summary["p50"] <= summary["p99"]

    def test_zero_and_negative_durations(self):
        histogram = LatencyHistogram()
        histogram.record(0.0)
        histogram.record(-1.0)  # clock skew: clamped, never throws
        assert histogram.count == 2
        assert histogram.percentile(1.0) > 0


class TestMaintenanceStats:
    def test_update_vs_batch_series(self):
        stats = MaintenanceStats("e")
        stats.record_update(0.001, "apply")
        stats.record_update(0.002, "update")
        stats.record_update(0.01, "apply_batch")
        assert stats.updates == 2
        assert stats.batches == 1
        assert stats.update_latency.count == 2
        assert stats.batch_latency.count == 1

    def test_to_dict_is_json_able(self):
        stats = MaintenanceStats("e")
        stats.record_update(0.001)
        stats.record_delta("V_A", 3)
        stats.record_enum_delay(0.0001)
        stats.record_migration(5, to_heavy=True)
        stats.record_repartition(4.0)
        stats.record_ops({"lookup": 7})
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["updates"] == 1
        assert payload["delta_sizes"]["V_A"]["count"] == 1
        assert payload["rebalance"]["migrations"] == 1
        assert payload["rebalance"]["repartitions"] == 1
        assert payload["ops"] == {"lookup": 7}

    def test_render_mentions_key_sections(self):
        stats = MaintenanceStats("engine-x")
        stats.record_update(0.001)
        stats.record_delta("V_A", 2)
        stats.record_migration(1, to_heavy=False)
        text = stats.render()
        assert "engine-x" in text
        assert "delta sizes" in text
        assert "rebalancing" in text

    def test_merge(self):
        a, b = MaintenanceStats("a"), MaintenanceStats("b")
        a.record_update(0.001)
        b.record_update(0.002)
        b.record_delta("V", 4)
        a.merge(b)
        assert a.updates == 2
        assert a.delta_sizes["V"].count == 1

    def test_labelled_merge_keeps_shard_identity(self):
        total = MaintenanceStats("coordinator")
        total.record_update(0.001)
        shard = MaintenanceStats("worker")
        shard.record_update(0.002)
        shard.record_delta("V_A", 3)
        total.merge(shard, label="shard0")
        # the shard's work is summarised, not folded into the top-level
        # counters — a logical update is counted once, by the coordinator
        assert total.updates == 1
        assert total.shard_summaries["shard0"]["updates"] == 1
        assert "shard0/V_A" in total.delta_sizes
        assert "V_A" not in total.delta_sizes
        payload = total.to_dict()
        assert payload["shards"]["shard0"]["updates"] == 1
        assert "shard0" in total.render()

    def test_unlabelled_merge_folds_shard_summaries(self):
        a, b = MaintenanceStats("a"), MaintenanceStats("b")
        shard = MaintenanceStats("worker")
        shard.record_update(0.002)
        a.merge(shard, label="shard0")
        b.merge(shard, label="shard0")
        a.merge(b)
        # count fields add on label collision
        assert a.shard_summaries["shard0"]["updates"] == 2


class _ToyEngine(Observable):
    def __init__(self):
        self.applied = []

    @observed
    def apply(self, update):
        self.applied.append(update)

    @observed
    def apply_batch(self, batch):
        for update in batch:
            self.apply(update)


class TestObservedDecorator:
    def test_no_stats_no_recording(self):
        engine = _ToyEngine()
        engine.apply("u")
        assert engine.stats is None

    def test_attach_records_latency(self):
        engine = _ToyEngine()
        stats = engine.attach_stats()
        engine.apply("u1")
        engine.apply("u2")
        assert stats.updates == 2
        assert stats.update_latency.count == 2
        assert stats.engine == "_ToyEngine"

    def test_outermost_frame_wins(self):
        # apply_batch loops over decorated apply: the shared recorder
        # must count one batch, not also three updates.
        engine = _ToyEngine()
        stats = engine.attach_stats()
        engine.apply_batch(["u1", "u2", "u3"])
        assert stats.batches == 1
        assert stats.updates == 0
        assert len(engine.applied) == 3

    def test_detach(self):
        engine = _ToyEngine()
        stats = engine.attach_stats()
        assert engine.detach_stats() is stats
        engine.apply("u")
        assert stats.updates == 0

    def test_exceptions_still_recorded(self):
        class Exploding(Observable):
            @observed
            def apply(self, update):
                raise RuntimeError("boom")

        engine = Exploding()
        stats = engine.attach_stats()
        with pytest.raises(RuntimeError):
            engine.apply("u")
        assert stats.updates == 1  # the attempt is still a sample


class TestObservedEnumeration:
    def test_counts_and_delays(self):
        stats = MaintenanceStats("e")
        values = list(observed_enumeration(stats, iter([1, 2, 3])))
        assert values == [1, 2, 3]
        assert stats.enumerations == 1
        assert stats.tuples_enumerated == 3
        assert stats.enum_delay.count == 3

    def test_none_stats_pass_through(self):
        assert list(observed_enumeration(None, [1, 2])) == [1, 2]


class TestEngineIntegration:
    def _small_engine(self):
        from repro import IVMEngine

        db = Database()
        db.create("R", ("A", "B"))
        db.create("S", ("B",))
        return IVMEngine(parse_query("Q(A) = R(A, B) * S(B)"), db)

    def test_facade_shares_recorder_with_backend(self):
        engine = self._small_engine()
        stats = engine.attach_stats()
        assert engine.backend.stats is stats
        for i in range(20):
            engine.insert("R", i % 3, i % 4)
            engine.insert("S", i % 4)
        assert stats.updates == 40
        # View-tree delta sizes were recorded per view.
        assert any(view.startswith("V_") for view in stats.delta_sizes)

    def test_enumeration_delay_sampled(self):
        engine = self._small_engine()
        stats = engine.attach_stats()
        engine.insert("R", 1, 2)
        engine.insert("S", 2)
        assert list(engine.enumerate()) == [((1,), 1)]
        assert stats.enumerations == 1
        assert stats.tuples_enumerated == 1

    def test_triangle_counter_rebalance_events(self):
        import random

        from repro.ivme.triangle import TriangleCounter

        counter = TriangleCounter(epsilon=0.5)
        stats = counter.attach_stats()
        rng = random.Random(7)
        for _ in range(300):
            counter.apply(
                Update(
                    rng.choice("RST"),
                    (rng.randrange(5), rng.randrange(5)),
                    1,
                )
            )
        assert stats.updates == 300
        assert stats.repartitions > 0

    def test_tradeoff_engine_observable(self):
        from repro.ivme.hierarchical import TradeoffEngine

        engine = TradeoffEngine(epsilon=0.5)
        stats = engine.attach_stats()
        for i in range(40):
            engine.apply(Update("R", (i % 5, i % 3), 1))
            engine.apply(Update("S", (i % 3,), 1))
        assert stats.updates == 80
        assert engine.R.stats is stats

    def test_strategies_observable(self):
        from repro.viewtree import make_strategy

        db = Database()
        db.create("R", ("Y", "X"))
        db.create("S", ("Y", "Z"))
        query = parse_query("Q(Y, X, Z) = R(Y, X) * S(Y, Z)")
        for name in ("eager-fact", "lazy-list"):
            strategy = make_strategy(name, query, db.copy())
            stats = strategy.attach_stats()
            strategy.apply(Update("R", (1, 2), 1))
            strategy.apply(Update("S", (1, 3), 1))
            count = strategy.enumerate_count()
            assert count == 1
            assert stats.updates == 2, name
            assert stats.tuples_enumerated >= 1, name


class TestStatsExport:
    def test_stats_record_schema(self):
        stats = MaintenanceStats("e")
        record = stats_record(stats, meta={"query": "Q"})
        assert record["schema"] == STATS_SCHEMA
        assert record["engine"] == "e"
        assert record["meta"] == {"query": "Q"}

    def test_write_stats_json(self, tmp_path):
        stats = MaintenanceStats("e")
        stats.record_update(0.001)
        path = write_stats_json(str(tmp_path / "out.json"), stats)
        with open(path) as handle:
            data = json.load(handle)
        assert data["schema"] == STATS_SCHEMA
        assert data["stats"]["updates"] == 1
