"""Multi-query planning and maintenance (Section 4.2 for query sets)."""

import pytest

from repro.cascade import MultiQueryEngine
from repro.data import Database, Update
from repro.naive import evaluate
from repro.query import parse_query
from tests.conftest import valid_stream

Q1 = parse_query("Q1(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)")
Q2 = parse_query("Q2(A,B,C) = R(A,B) * S(B,C)")
Q3 = parse_query("Q3(A,B) = U(A,B)")


def fresh_db():
    db = Database()
    for name in ("R", "S", "T", "U"):
        db.create(name, ("X", "Y"))
    return db


class TestPlanning:
    def test_cascade_detected(self):
        engine = MultiQueryEngine([Q1, Q2, Q3], fresh_db())
        assert engine.assignments["Q1"].mode == "cascade-rider"
        assert engine.assignments["Q1"].via == "Q2"
        assert engine.assignments["Q2"].mode == "cascade-host"
        assert engine.assignments["Q3"].mode == "direct"

    def test_no_host_falls_back_to_direct(self):
        engine = MultiQueryEngine([Q1, Q3], fresh_db())
        assert engine.assignments["Q1"].mode == "direct"

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            MultiQueryEngine([Q1, Q1], fresh_db())

    def test_plan_report(self):
        engine = MultiQueryEngine([Q1, Q2], fresh_db())
        report = engine.plan_report()
        assert "Q1: cascades over Q2" in report

    def test_unknown_query_enumeration(self):
        engine = MultiQueryEngine([Q3], fresh_db())
        with pytest.raises(KeyError):
            list(engine.enumerate("Q9"))


class TestMaintenance:
    def test_all_queries_track_naive(self, rng):
        db = fresh_db()
        engine = MultiQueryEngine([Q1, Q2, Q3], db)
        stream = valid_stream(
            rng, {"R": 2, "S": 2, "T": 2, "U": 2}, 300, domain=7
        )
        for i, update in enumerate(stream):
            engine.apply(update)
            if i % 100 == 99:
                for q in (Q1, Q2, Q3):
                    got = dict(engine.enumerate(q.name))
                    assert got == evaluate(q, db).to_dict(), q.name

    def test_host_enumeration_served_by_cascade(self, rng):
        db = fresh_db()
        engine = MultiQueryEngine([Q1, Q2], db)
        for update in valid_stream(rng, {"R": 2, "S": 2, "T": 2}, 120, domain=6):
            engine.apply(update)
        q2_out = dict(engine.enumerate("Q2"))
        assert q2_out == evaluate(Q2, db).to_dict()
        # After enumerating the host, the rider is fresh (not stale).
        q1_out = dict(engine.enumerate("Q1"))
        assert q1_out == evaluate(Q1, db).to_dict()

    def test_updates_to_unrelated_relation(self, rng):
        db = fresh_db()
        db.create("Z", ("X", "Y"))
        engine = MultiQueryEngine([Q3], db)
        engine.apply(Update("Z", (1, 2), 1))  # no engine consumes Z
        assert db["Z"].get((1, 2)) == 1
