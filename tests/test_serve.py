"""The async group-commit serving front-end (`repro.serve`)."""

import asyncio
import signal
import sys
import threading
import time

import pytest

from repro.core.engine import IVMEngine
from repro.data.database import Database
from repro.obs import MaintenanceStats
from repro.query.parser import parse_query
from repro.serve import AsyncIVMServer, GroupCommitQueue, update_stream
from repro.serve.batcher import QueueClosed

TEST_TIMEOUT_SECONDS = 60.0


@pytest.fixture(autouse=True)
def _wall_clock_timeout():
    """Fail instead of hanging: an event-loop deadlock in these tests
    would otherwise wedge the whole suite.  Stdlib ``SIGALRM`` keeps the
    guard dependency-free; it degrades to a no-op on platforms without
    the signal (or off the main thread, where signals cannot be set).
    """
    if (
        not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {TEST_TIMEOUT_SECONDS:g}s wall-clock limit"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, TEST_TIMEOUT_SECONDS)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def fresh_engine(text, shards=1, **kwargs):
    query = parse_query(text)
    db = Database()
    for atom in query.atoms:
        if atom.relation not in db:
            db.create(atom.relation, atom.variables)
    return query, IVMEngine(query, db, shards=shards, **kwargs)


def close_backend(engine):
    close = getattr(engine.backend, "close", None)
    if close is not None:
        close()


# ----------------------------------------------------------------------
# GroupCommitQueue
# ----------------------------------------------------------------------


class TestGroupCommitQueue:
    def test_size_trigger(self):
        async def run():
            queue = GroupCommitQueue(high_water=64)
            for i in range(10):
                await queue.put(i)
            batch, trigger, depth, _ = await queue.collect(4, 60.0)
            assert batch == [0, 1, 2, 3]
            assert trigger == "size"
            assert depth == 10
            return len(queue)

        assert asyncio.run(run()) == 6

    def test_deadline_trigger_flushes_partial_batch(self):
        async def run():
            queue = GroupCommitQueue(high_water=64)
            await queue.put("only")
            start = time.perf_counter()
            batch, trigger, depth, _ = await queue.collect(1000, 0.01)
            waited = time.perf_counter() - start
            assert batch == ["only"]
            assert trigger == "deadline"
            assert depth == 1
            assert waited < 5.0  # did not wait for 1000 items

        asyncio.run(run())

    def test_close_drains_then_signals_done(self):
        async def run():
            queue = GroupCommitQueue(high_water=64)
            await queue.put("a")
            await queue.put("b")
            queue.close()
            batch, trigger, _, _ = await queue.collect(1000, 60.0)
            assert batch == ["a", "b"]
            assert trigger == "drain"
            assert await queue.collect(1000, 60.0) is None
            with pytest.raises(QueueClosed):
                await queue.put("c")

        asyncio.run(run())

    def test_put_blocks_at_high_water(self):
        async def run():
            queue = GroupCommitQueue(high_water=2)
            await queue.put(1)
            await queue.put(2)

            async def producer():
                return await queue.put(3)

            task = asyncio.get_running_loop().create_task(producer())
            await asyncio.sleep(0.01)
            assert not task.done()  # blocked at the mark
            assert len(queue) == 2
            await queue.collect(2, 0.0)
            waited = await task
            assert waited > 0.0
            assert len(queue) == 1

        asyncio.run(run())


# ----------------------------------------------------------------------
# AsyncIVMServer
# ----------------------------------------------------------------------


EQUIVALENCE_QUERIES = [
    ("Q(Y,X,Z) = R(Y,X) * S(Y,Z)", 1),
    ("Q(A) = R(A,B) * S(B)", 1),
    ("Q(B,A) = R(B,A) * S(B)", 3),  # sharded coordinator
    ("Q() = R(A,B) * S(B,C) * T(C,A)", 1),  # delta/triangle scalar plan
]


class TestGroupCommitEquivalence:
    @pytest.mark.parametrize("text,shards", EQUIVALENCE_QUERIES)
    def test_concurrent_writers_match_serial_replay(self, text, shards):
        """N concurrent writers through the server produce bit-identical
        views to a serial ``apply_batch`` replay of the same updates."""
        writers, per_writer, domain, seed = 4, 300, 8, 7
        query, engine = fresh_engine(text, shards=shards)

        async def run():
            async with AsyncIVMServer(
                engine, max_batch=32, max_delay=0.001, high_water=128
            ) as server:
                server.attach_stats()

                async def write(index):
                    for update in update_stream(
                        query, per_writer, domain=domain, seed=seed + index
                    ):
                        await server.submit(update)

                await asyncio.gather(*(write(i) for i in range(writers)))
                await server.drain()
                if query.head:
                    return sorted(await server.enumerate())
                return await server.scalar()

        try:
            served = asyncio.run(run())
        finally:
            close_backend(engine)

        _, serial = fresh_engine(text, shards=1)
        updates = []
        for i in range(writers):
            updates.extend(
                update_stream(query, per_writer, domain=domain, seed=seed + i)
            )
        try:
            serial.apply_batch(updates)
            if query.head:
                assert served == sorted(serial.enumerate())
            else:
                assert served == serial.scalar()
        finally:
            close_backend(serial)

    def test_process_shard_workers_behind_server_match_serial(self):
        """The serving tier over process-executor shards (persistent
        delta-IPC workers): concurrent writers plus snapshot reads in
        flight, final state bit-identical to a serial replay — and the
        commits actually went through the worker protocol."""
        text, shards = "Q(B,A) = R(B,A) * S(B)", 3
        writers, per_writer, domain, seed = 3, 200, 8, 19
        query, engine = fresh_engine(
            text, shards=shards, shard_executor="process"
        )

        async def run():
            stats = MaintenanceStats()
            async with AsyncIVMServer(
                engine, max_batch=64, max_delay=0.001, stats=stats
            ) as server:
                assert server.snapshot_reads

                async def write(index):
                    for update in update_stream(
                        query, per_writer, domain=domain, seed=seed + index
                    ):
                        await server.submit(update)

                async def read():
                    for _ in range(5):
                        await server.enumerate()
                        await asyncio.sleep(0.001)

                await asyncio.gather(
                    *(write(i) for i in range(writers)), read()
                )
                await server.drain()
                return sorted(await server.enumerate()), stats

        try:
            served, stats = asyncio.run(run())
            engine_stats = engine.backend.merged_stats()
        finally:
            close_backend(engine)

        assert engine_stats.ipc_commits == stats.commits
        assert engine_stats.ipc_workers_spawned == shards
        assert engine_stats.ipc_worker_failures == 0

        _, serial = fresh_engine(text, shards=1)
        updates = []
        for i in range(writers):
            updates.extend(
                update_stream(query, per_writer, domain=domain, seed=seed + i)
            )
        try:
            serial.apply_batch(updates)
            assert served == sorted(serial.enumerate())
        finally:
            close_backend(serial)

    def test_lookup_between_commits_sees_committed_state(self):
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")

        async def run():
            stats = MaintenanceStats()
            async with AsyncIVMServer(
                engine, max_batch=4, max_delay=0.0005, stats=stats
            ) as server:
                for update in update_stream(query, 200, domain=6, seed=3):
                    await server.submit(update)
                await server.drain()
                hits = [await server.lookup((a,)) for a in range(6)]
            expected = dict(engine.enumerate())
            ring_zero = engine.database.ring.zero
            for a, payload in enumerate(hits):
                assert payload == expected.get((a,), ring_zero)
            assert stats.serve_lookups == 6
            assert stats.read_staleness.count == 6
            return stats

        stats = asyncio.run(run())
        assert stats.submits == 200
        assert stats.commits > 0
        assert stats.commit_batch_size.count == stats.commits
        assert stats.commit_queue_depth.count == stats.commits


class TestBackpressure:
    def test_submit_blocks_at_high_water(self):
        """With a deliberately slow engine, the queue caps at the
        high-water mark and submitters spend time blocked."""
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")
        inner_apply = engine.apply_batch

        def slow_apply(batch):
            time.sleep(0.002)
            inner_apply(batch)

        engine.apply_batch = slow_apply
        high_water = 8

        async def run():
            stats = MaintenanceStats()
            async with AsyncIVMServer(
                engine,
                max_batch=4,
                max_delay=0.0,
                high_water=high_water,
                stats=stats,
            ) as server:
                for update in update_stream(query, 120, domain=6, seed=1):
                    await server.submit(update)
                await server.drain()
            return stats

        stats = asyncio.run(run())
        assert stats.backpressure_waits > 0
        assert stats.backpressure_wait.stat.total > 0.0
        # Depth at seal time never exceeds the mark.
        assert stats.commit_queue_depth.stat.maximum <= high_water

    def test_unthrottled_run_has_no_backpressure(self):
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")

        async def run():
            stats = MaintenanceStats()
            async with AsyncIVMServer(
                engine, max_batch=64, high_water=100_000, stats=stats
            ) as server:
                for update in update_stream(query, 100, domain=6, seed=2):
                    await server.submit(update)
                await server.drain()
            return stats

        assert asyncio.run(run()).backpressure_waits == 0


class TestCommitTriggers:
    def test_deadline_commits_flush_partial_batches(self):
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")

        async def run():
            stats = MaintenanceStats()
            async with AsyncIVMServer(
                engine, max_batch=10_000, max_delay=0.005, stats=stats
            ) as server:
                await server.submit(next(iter(update_stream(query, 1))))
                await server.drain()  # only the deadline can flush this
            return stats

        stats = asyncio.run(run())
        assert stats.deadline_commits >= 1
        assert stats.size_commits == 0
        assert stats.commits == stats.deadline_commits

    def test_shutdown_drains_queue(self):
        """stop() commits everything still queued, without waiting for
        the (here: one minute) deadline."""
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")
        updates = list(update_stream(query, 50, domain=6, seed=5))

        async def run():
            stats = MaintenanceStats()
            server = AsyncIVMServer(
                engine, max_batch=10_000, max_delay=60.0, stats=stats
            )
            await server.start()
            for update in updates:
                await server.submit(update)
            start = time.perf_counter()
            await server.stop()
            assert time.perf_counter() - start < 30.0
            return stats

        stats = asyncio.run(run())
        assert stats.drain_commits >= 1
        assert stats.commit_batch_size.stat.total == 50
        _, serial = fresh_engine("Q(A) = R(A,B) * S(B)")
        serial.apply_batch(updates)
        assert sorted(engine.enumerate()) == sorted(serial.enumerate())

    def test_commit_error_surfaces_on_next_call(self):
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")

        def boom(batch):
            raise RuntimeError("kaboom")

        engine.apply_batch = boom

        async def run():
            async with AsyncIVMServer(
                engine, max_batch=1, max_delay=0.0
            ) as server:
                await server.submit(next(iter(update_stream(query, 1))))
                with pytest.raises(RuntimeError, match="kaboom"):
                    await server.drain()

        asyncio.run(run())

    def test_submit_after_stop_raises(self):
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")

        async def run():
            server = AsyncIVMServer(engine)
            await server.start()
            await server.stop()
            with pytest.raises(RuntimeError):
                await server.submit(next(iter(update_stream(query, 1))))

        asyncio.run(run())


class TestServingObservability:
    def test_serving_block_in_obs_schema(self):
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")

        async def run():
            stats = MaintenanceStats()
            async with AsyncIVMServer(
                engine, max_batch=16, max_delay=0.001, stats=stats
            ) as server:
                for update in update_stream(query, 100, domain=6, seed=9):
                    await server.submit(update)
                await server.drain()
                await server.lookup((0,))
            return stats

        stats = asyncio.run(run())
        serving = stats.to_dict()["serving"]
        assert serving["submits"] == 100
        assert serving["commits"] >= 1
        assert (
            serving["size_commits"]
            + serving["deadline_commits"]
            + serving["drain_commits"]
            == serving["commits"]
        )
        assert serving["commit_latency"]["count"] == serving["commits"]
        assert serving["batch_size"]["buckets"]
        assert serving["queue_depth"]["count"] == serving["commits"]
        assert serving["lookups"] == 1
        assert "read_staleness" in serving
        assert "serving:" in stats.render()

    def test_merge_accumulates_serving_metrics(self):
        a, b = MaintenanceStats(), MaintenanceStats()
        for stats in (a, b):
            stats.record_submit(10)
            stats.record_commit(0.001, 10, 12, "size")
            stats.record_serve_read(0.0005)
        a.merge(b)
        assert a.submits == 20
        assert a.commits == 2
        assert a.commit_batch_size.stat.total == 20
        assert a.serve_lookups == 2


# ----------------------------------------------------------------------
# Thread-safe recorder (satellite: stress test failing under old code)
# ----------------------------------------------------------------------


class TestRecorderThreadSafety:
    def test_concurrent_recording_loses_no_updates(self):
        """Hammer one recorder from many threads; every increment must
        land.  Under the old unsynchronized recorder the read-modify-
        write races (`self.ops[k] = self.ops.get(k, 0) + n`,
        `self.updates += 1`) drop updates and this test fails."""
        stats = MaintenanceStats()
        threads, iterations = 16, 6000
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-6)
        try:
            barrier = threading.Barrier(threads)

            def hammer():
                barrier.wait()
                for _ in range(iterations):
                    stats.record_ops({"probe": 1})
                    stats.record_update(0.0, "apply")
                    stats.record_point_lookup()

            workers = [
                threading.Thread(target=hammer) for _ in range(threads)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join()
        finally:
            sys.setswitchinterval(old_interval)
        expected = threads * iterations
        assert stats.ops["probe"] == expected
        assert stats.updates == expected
        assert stats.update_latency.count == expected
        assert stats.point_lookups == expected

    def test_threaded_commits_through_server_are_exact(self):
        """The committer applies batches on a worker thread while the
        event loop records submits — totals must still be exact."""
        query, engine = fresh_engine("Q(B,A) = R(B,A) * S(B)", shards=2)

        async def run():
            stats = MaintenanceStats()
            async with AsyncIVMServer(
                engine, max_batch=8, max_delay=0.0005, stats=stats
            ) as server:
                for update in update_stream(query, 400, domain=8, seed=11):
                    await server.submit(update)
                await server.drain()
            return stats

        try:
            stats = asyncio.run(run())
        finally:
            close_backend(engine)
        assert stats.submits == 400
        assert stats.commit_batch_size.stat.total == 400

    def test_recorder_pickles_without_lock(self):
        import pickle

        stats = MaintenanceStats()
        stats.record_submit(3)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone.submits == 3
        clone.record_submit(1)  # the rebuilt lock works
        assert clone.submits == 4


# ----------------------------------------------------------------------
# Point lookups (satellite: sharded early-break + owner routing)
# ----------------------------------------------------------------------


class TestPointLookup:
    def test_viewtree_lookup_matches_enumeration(self):
        query, engine = fresh_engine("Q(Y,X,Z) = R(Y,X) * S(Y,Z)")
        engine.apply_batch(
            list(update_stream(query, 300, domain=6, seed=13))
        )
        expected = dict(engine.enumerate())
        ring_zero = engine.database.ring.zero
        for key, payload in list(expected.items())[:10]:
            assert engine.lookup(key) == payload
        assert engine.lookup((99, 99, 99)) == ring_zero
        with pytest.raises(ValueError):
            engine.lookup((1, 2))

    def test_sharded_lookup_probes_one_shard(self):
        """Owner routing + early break: a fully-prebound lookup probes
        exactly one shard, and guard probes stay a small constant
        instead of scaling with the shard count."""
        shards = 4
        query, engine = fresh_engine(
            "Q(B,A) = R(B,A) * S(B)", shards=shards
        )
        stats = engine.attach_stats()
        try:
            engine.apply_batch(
                list(update_stream(query, 400, domain=16, seed=17))
            )
            expected = dict(engine.enumerate())
            assert expected  # the workload produced output tuples
            for key, payload in list(expected.items())[:8]:
                assert engine.lookup(key) == payload
            merged = engine.backend.merged_stats()
        finally:
            close_backend(engine)
        assert merged.point_lookups == 8
        # One shard probed per lookup — not all four.
        assert merged.lookup_shards_probed == 8
        assert merged.lookup_shards_probed < shards * merged.point_lookups
        assert "point lookups:" in merged.render()
        enumeration = merged.to_dict()["enumeration"]
        assert enumeration["point_lookups"] == 8
        assert enumeration["lookup_shards_probed"] == 8

# ----------------------------------------------------------------------
# Concurrency regressions (serve/shard bugfix sweep)
# ----------------------------------------------------------------------


class TestConcurrencyRegressions:
    def test_stop_while_submit_backpressured_raises_server_stopped(self):
        """A submit blocked on backpressure when ``stop()`` closes the
        queue must surface the documented ``RuntimeError("server is
        stopped")`` — not the queue's internal ``QueueClosed`` — because
        the update was never accepted."""
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")
        release = threading.Event()
        inner_apply = engine.apply_batch

        def gated_apply(batch):
            release.wait(TEST_TIMEOUT_SECONDS / 2)
            inner_apply(batch)

        engine.apply_batch = gated_apply
        updates = list(update_stream(query, 3, domain=4, seed=11))

        async def run():
            server = AsyncIVMServer(
                engine, max_batch=1, max_delay=0.0, high_water=1
            )
            await server.start()
            await server.submit(updates[0])
            await asyncio.sleep(0.05)  # committer takes it, parks in apply
            await server.submit(updates[1])  # queue back at high water
            loop = asyncio.get_running_loop()
            blocked = loop.create_task(server.submit(updates[2]))
            await asyncio.sleep(0.05)
            assert not blocked.done()  # stuck on backpressure
            stopper = loop.create_task(server.stop())
            with pytest.raises(
                RuntimeError, match="server is stopped"
            ) as excinfo:
                await blocked
            assert not isinstance(excinfo.value, QueueClosed)
            release.set()
            await stopper

        asyncio.run(run())

    def test_drain_parks_instead_of_spinning(self):
        """While a commit is in flight with a stale-set idle event,
        ``drain()`` must park on the event — not busy-loop through
        thousands of wait/sleep(0) iterations until the commit lands."""
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")

        async def run():
            server = AsyncIVMServer(engine)
            await server.start()
            # Pathological pre-fix state: idle event set while a commit
            # is still in flight (a submit sealed and the committer set
            # the event on an empty queue before drain() ran).
            server._inflight_oldest = time.perf_counter()
            server._idle.set()

            waits = 0
            inner_wait = server._idle.wait

            async def counting_wait():
                nonlocal waits
                waits += 1
                return await inner_wait()

            server._idle.wait = counting_wait

            async def finish_commit():
                await asyncio.sleep(0.05)
                server._inflight_oldest = None
                server._idle.set()

            task = asyncio.get_running_loop().create_task(finish_commit())
            await server.drain()
            await task
            await server.stop()
            return waits

        # The drainer parks once (maybe twice on a spurious wake); the
        # old code spun through hundreds of iterations in those 50ms.
        assert asyncio.run(run()) <= 3

    def test_failed_commits_counted_apart_from_latency_stats(self):
        """Failed commits must bump ``commit_errors`` only — never the
        commit count or the latency/batch-size histograms, whose
        percentiles should describe real commits."""
        query, engine = fresh_engine("Q(A) = R(A,B) * S(B)")
        inner_apply = engine.apply_batch
        calls = {"n": 0}

        def flaky_apply(batch):
            calls["n"] += 1
            if calls["n"] % 2 == 1:
                raise RuntimeError("flaky kaboom")
            inner_apply(batch)

        engine.apply_batch = flaky_apply
        updates = list(update_stream(query, 4, domain=4, seed=3))

        async def run():
            stats = MaintenanceStats()
            server = AsyncIVMServer(
                engine, max_batch=1, max_delay=0.0, stats=stats
            )
            await server.start()
            for update in updates:
                await server.submit(update)
                try:
                    await server.drain()
                except RuntimeError:
                    pass  # the surfaced commit error, consumed
            try:
                await server.stop()
            except RuntimeError:
                pass
            return stats

        stats = asyncio.run(run())
        assert stats.commit_errors == 2
        assert stats.commits == 2
        assert stats.commit_latency.count == stats.commits
        assert stats.commit_batch_size.count == stats.commits
        assert stats.commit_batch_size.stat.total == 2  # applied updates only
        assert "2 failed" in stats.render()
        assert stats.to_dict()["serving"]["commit_errors"] == 2
