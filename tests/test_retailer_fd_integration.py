"""Example 4.10 end-to-end: the Retailer FD query through the FD engine."""

import random

from repro.constraints import FDEngine, q_hierarchical_under_fds
from repro.data import Update, counting
from repro.naive import evaluate
from repro.workloads import retailer_fd_database, retailer_fd_query


class TestRetailerFDIntegration:
    def test_theorem_411_applies(self):
        query, fds = retailer_fd_query()
        assert q_hierarchical_under_fds(query, fds)

    def test_initial_build_matches_naive(self):
        query, fds = retailer_fd_query()
        db = retailer_fd_database(seed=1)
        engine = FDEngine(query, fds, db)
        assert engine.output_relation() == evaluate(query, db)

    def test_inventory_stream_maintenance(self):
        query, fds = retailer_fd_query()
        db = retailer_fd_database(seed=2)
        engine = FDEngine(query, fds, db)
        rng = random.Random(3)
        inserted: list[tuple] = []
        for _ in range(200):
            if inserted and rng.random() < 0.3:
                key = inserted.pop(rng.randrange(len(inserted)))
                engine.apply(Update("Inventory", key, -1))
            else:
                key = (rng.randrange(40), rng.randrange(30), rng.randrange(80))
                engine.apply(Update("Inventory", key, 1))
                inserted.append(key)
        assert engine.output_relation() == evaluate(query, db)

    def test_census_updates_stay_constant(self):
        """Census is keyed by zip with zip -> locn: its updates are O(1)
        because the Location lookup returns at most one location."""
        query, fds = retailer_fd_query()
        costs = []
        for zips in (15, 60):
            db = retailer_fd_database(
                locations=zips * 3, zips=zips, inventory_rows=zips * 100, seed=4
            )
            engine = FDEngine(query, fds, db)
            rng = random.Random(5)
            with counting() as ops:
                for _ in range(20):
                    z = rng.randrange(zips)
                    engine.apply(Update("Census", (z, 99_000), 1))
            costs.append(ops.total() / 20)
        assert costs[1] <= costs[0] * 2 + 10

    def test_weather_updates_match(self):
        query, fds = retailer_fd_query()
        db = retailer_fd_database(seed=6)
        engine = FDEngine(query, fds, db)
        rng = random.Random(7)
        for _ in range(100):
            engine.apply(
                Update(
                    "Weather",
                    (rng.randrange(40), rng.randrange(30)),
                    rng.choice([1, -1]),
                )
            )
        assert engine.output_relation() == evaluate(query, db)
