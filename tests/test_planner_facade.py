"""The planner ladder (Section 6) and the IVMEngine facade."""

import pytest

from repro import Database, IVMEngine, parse_query, plan_maintenance
from repro.constraints import parse_fds
from repro.data import Update
from repro.naive import evaluate, evaluate_scalar
from tests.conftest import valid_stream


class TestPlannerLadder:
    def test_q_hierarchical(self):
        plan = plan_maintenance(parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)"))
        assert plan.strategy == "viewtree"
        assert plan.update_time == "O(1)"

    def test_fd_rescue(self):
        q = parse_query("Q(Z, Y, X, W) = R(X, W) * S(X, Y) * T(Y, Z)")
        fds = parse_fds("X -> Y", "Y -> Z")
        assert plan_maintenance(q).strategy == "delta"
        assert plan_maintenance(q, fds).strategy == "fd-viewtree"

    def test_static_dynamic(self):
        q = parse_query("Q(A,B,C) = R(A,D) * S(A,B) * T@s(B,C)")
        assert plan_maintenance(q).strategy == "static-dynamic"

    def test_cqap(self):
        q = parse_query("Q(. | A, B, C) = E(A,B) * E(B,C) * E(C,A)")
        assert plan_maintenance(q).strategy == "cqap"

    def test_intractable_cqap_falls_back(self):
        q = parse_query("Q(C | A, B) = E(A,B) * E(B,C) * E(C,A)")
        assert plan_maintenance(q).strategy == "delta"

    def test_insert_only(self):
        q = parse_query("Q(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)")
        assert plan_maintenance(q).strategy == "delta"
        assert plan_maintenance(q, insert_only=True).strategy == "insert-only"

    def test_triangle(self):
        q = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
        assert plan_maintenance(q).strategy == "ivm-eps-triangle"

    def test_hierarchical_not_q(self):
        q = parse_query("Q(A) = R(A,B) * S(B)")
        assert plan_maintenance(q).strategy == "viewtree-hierarchical"

    def test_plan_renders(self):
        plan = plan_maintenance(parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)"))
        assert "Theorem 4.1" in str(plan)


class TestFacade:
    def test_viewtree_path(self, rng):
        db = Database()
        db.create("R", ("Y", "X"))
        db.create("S", ("Y", "Z"))
        q = parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)")
        engine = IVMEngine(q, db)
        for update in valid_stream(rng, {"R": 2, "S": 2}, 200):
            engine.apply(update)
        assert dict(engine.enumerate()) == evaluate(q, db).to_dict()

    def test_triangle_path(self, rng):
        db = Database()
        for name in ("R", "S", "T"):
            db.create(name, ("X", "Y"))
        q = parse_query("Q() = R(A,B) * S(B,C) * T(C,A)")
        engine = IVMEngine(q, db)
        for update in valid_stream(rng, {"R": 2, "S": 2, "T": 2}, 300):
            engine.apply(update)
        assert engine.scalar() == evaluate_scalar(q, db)

    def test_fd_path(self, rng):
        from tests.test_constraints import fd_satisfying_db

        db = fd_satisfying_db(rng)
        q = parse_query("Q(Z, Y, X, W) = R(X, W) * S(X, Y) * T(Y, Z)")
        fds = parse_fds("X -> Y", "Y -> Z")
        engine = IVMEngine(q, db, fds=fds)
        assert engine.plan.strategy == "fd-viewtree"
        for _ in range(100):
            engine.apply(Update("R", (rng.randrange(12), rng.randrange(20)), 1))
        assert dict(engine.enumerate()) == evaluate(q, db).to_dict()

    def test_cqap_path(self):
        db = Database()
        db.create("E", ("X", "Y"))
        q = parse_query("Q(. | A, B, C) = E(A,B) * E(B,C) * E(C,A)")
        engine = IVMEngine(q, db)
        engine.insert("E", 1, 2)
        engine.insert("E", 2, 3)
        engine.insert("E", 3, 1)
        assert list(engine.answer({"A": 1, "B": 2, "C": 3}))

    def test_answer_rejected_for_non_cqap(self):
        db = Database()
        db.create("R", ("Y", "X"))
        db.create("S", ("Y", "Z"))
        engine = IVMEngine(parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)"), db)
        with pytest.raises(TypeError):
            engine.answer({"Y": 1})

    def test_insert_only_path(self, rng):
        db = Database()
        for name in ("R", "S", "T"):
            rel = db.create(name, ("X", "Y"))
            for _ in range(20):
                rel.set((rng.randrange(5), rng.randrange(5)), 1)
        q = parse_query("Q(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)")
        engine = IVMEngine(q, db, insert_only=True)
        assert engine.plan.strategy == "insert-only"
        engine.insert("R", 0, 0)
        got = sorted(key for key, _ in engine.enumerate())
        assert got == sorted(evaluate(q, db).keys())

    def test_delta_fallback_path(self, rng):
        db = Database()
        for name in ("R", "S", "T"):
            db.create(name, ("X", "Y"))
        q = parse_query("Q(A,B,C,D) = R(A,B) * S(B,C) * T(C,D)")
        engine = IVMEngine(q, db)
        assert engine.plan.strategy == "delta"
        for update in valid_stream(rng, {"R": 2, "S": 2, "T": 2}, 150, domain=5):
            engine.apply(update)
        assert dict(engine.enumerate()) == evaluate(q, db).to_dict()

    def test_static_dynamic_path(self, rng):
        db = Database()
        db.create("R", ("A", "D"))
        db.create("S", ("A", "B"))
        t = db.create("T", ("B", "C"))
        for _ in range(50):
            t.insert(rng.randrange(6), rng.randrange(6))
        q = parse_query("Q(A,B,C) = R(A,D) * S(A,B) * T@s(B,C)")
        engine = IVMEngine(q, db)
        assert engine.plan.strategy == "static-dynamic"
        for update in valid_stream(rng, {"R": 2, "S": 2}, 150, domain=6):
            engine.apply(update)
        assert dict(engine.enumerate()) == evaluate(q, db).to_dict()

    def test_insert_delete_helpers(self):
        db = Database()
        db.create("R", ("Y", "X"))
        db.create("S", ("Y", "Z"))
        engine = IVMEngine(parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)"), db)
        engine.insert("R", 1, 2)
        engine.insert("S", 1, 3)
        assert dict(engine.enumerate()) == {(1, 2, 3): 1}
        engine.delete("R", 1, 2)
        assert dict(engine.enumerate()) == {}

    def test_explicit_plan_override(self):
        from repro.core import Plan

        db = Database()
        db.create("R", ("Y", "X"))
        db.create("S", ("Y", "Z"))
        q = parse_query("Q(Y,X,Z) = R(Y,X) * S(Y,Z)")
        plan = Plan("delta", "forced", "O(N)", "O(1)", "O(N)")
        engine = IVMEngine(q, db, plan=plan)
        assert engine.plan.strategy == "delta"
        engine.insert("R", 1, 2)
        engine.insert("S", 1, 3)
        assert dict(engine.enumerate()) == {(1, 2, 3): 1}
